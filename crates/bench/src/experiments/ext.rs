//! Extension experiments beyond the abstract's explicit claims.
//!
//! * **E10 — weighted AMF**: the natural generalization (max-min fairness
//!   on `A_j / w_j`); verifies that aggregate allocations track weights
//!   under contention.
//! * **E11 — the price of sharing incentive**: what Enhanced AMF's floors
//!   cost relative to plain AMF (total allocation, minimum share, Jain),
//!   measured on the same random-instance family whose SI violations E6
//!   quantifies.

use crate::ExpContext;
use amf_core::{AllocationPolicy, AmfSolver, Instance};
use amf_metrics::{fmt4, jain_index, min_share, Table};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters for E10.
#[derive(Debug, Clone)]
pub struct WeightedParams {
    /// Weight classes assigned round-robin to jobs.
    pub weight_classes: Vec<f64>,
    /// Jobs.
    pub n_jobs: usize,
    /// Sites.
    pub n_sites: usize,
    /// Seeds averaged over.
    pub seeds: u64,
}

impl Default for WeightedParams {
    fn default() -> Self {
        WeightedParams {
            weight_classes: vec![1.0, 2.0, 4.0],
            n_jobs: 60,
            n_sites: 8,
            seeds: 5,
        }
    }
}

impl WeightedParams {
    /// Tiny configuration for smoke tests.
    pub fn fast() -> Self {
        WeightedParams {
            weight_classes: vec![1.0, 2.0],
            n_jobs: 8,
            n_sites: 3,
            seeds: 1,
        }
    }
}

/// E10: mean aggregate and mean normalized aggregate (`A_j / w_j`) per
/// weight class, weighted AMF vs unweighted AMF.
pub fn weighted_fairness(ctx: &ExpContext, params: &WeightedParams) -> Table {
    ctx.log(&format!("[E10] weighted AMF: {params:?}"));
    let classes = &params.weight_classes;
    let mut table = Table::new(
        "E10: weighted AMF — aggregates track weights under contention",
        &[
            "weight",
            "mean_agg_weighted",
            "mean_norm_weighted",
            "mean_agg_unweighted",
        ],
    );
    let mut agg_w = vec![0.0; classes.len()];
    let mut norm_w = vec![0.0; classes.len()];
    let mut agg_u = vec![0.0; classes.len()];
    let mut count = vec![0usize; classes.len()];
    for seed in 0..params.seeds {
        // Elastic-style contention so weights actually bind.
        let base = super::skewed_workload(
            1.0,
            params.n_jobs,
            params.n_sites,
            params.n_sites.min(4),
            seed,
        );
        let unweighted = base.instance();
        let weights: Vec<f64> = (0..params.n_jobs)
            .map(|j| classes[j % classes.len()])
            .collect();
        let weighted = Instance::weighted(
            unweighted.capacities().to_vec(),
            unweighted.demands().to_vec(),
            weights.clone(),
        )
        .expect("valid weighted instance");
        let aw = AmfSolver::new().allocate(&weighted);
        let au = AmfSolver::new().allocate(&unweighted);
        for j in 0..params.n_jobs {
            let k = j % classes.len();
            agg_w[k] += aw.aggregate(j);
            norm_w[k] += aw.aggregate(j) / weights[j];
            agg_u[k] += au.aggregate(j);
            count[k] += 1;
        }
    }
    for (k, &w) in classes.iter().enumerate() {
        let c = count[k] as f64;
        table.row(vec![
            format!("{w:.0}"),
            fmt4(agg_w[k] / c),
            fmt4(norm_w[k] / c),
            fmt4(agg_u[k] / c),
        ]);
    }
    ctx.emit("e10_weighted", &table);
    table
}

/// Parameters for E11.
#[derive(Debug, Clone)]
pub struct SiPriceParams {
    /// Demand-sparsity levels (as in E6).
    pub sparsity_levels: Vec<f64>,
    /// Random instances per level.
    pub trials: usize,
    /// Max jobs.
    pub max_jobs: usize,
    /// Max sites.
    pub max_sites: usize,
    /// Base seed.
    pub seed: u64,
}

impl Default for SiPriceParams {
    fn default() -> Self {
        SiPriceParams {
            sparsity_levels: vec![0.0, 0.2, 0.4],
            trials: 1500,
            max_jobs: 6,
            max_sites: 4,
            seed: 23,
        }
    }
}

impl SiPriceParams {
    /// Tiny configuration for smoke tests.
    pub fn fast() -> Self {
        SiPriceParams {
            sparsity_levels: vec![0.2],
            trials: 50,
            max_jobs: 4,
            max_sites: 3,
            seed: 23,
        }
    }
}

/// E11: Enhanced AMF vs plain AMF — relative total allocation, minimum
/// share, and Jain index. Quantifies what (if anything) the
/// sharing-incentive floors cost.
pub fn si_price(ctx: &ExpContext, params: &SiPriceParams) -> Table {
    ctx.log(&format!("[E11] price of sharing incentive: {params:?}"));
    let mut table = Table::new(
        "E11: Enhanced AMF vs plain AMF (means over random instances)",
        &[
            "sparsity",
            "total_ratio",
            "min_share_ratio",
            "jain_plain",
            "jain_enhanced",
        ],
    );
    for &sparsity in &params.sparsity_levels {
        let mut total_ratio = 0.0;
        let mut min_ratio = 0.0;
        let mut jain_p = 0.0;
        let mut jain_e = 0.0;
        let mut counted = 0usize;
        for trial in 0..params.trials {
            let mut rng = StdRng::seed_from_u64(params.seed ^ (trial as u64).wrapping_mul(0xA5A5));
            let n = rng.gen_range(2..=params.max_jobs.max(2));
            let m = rng.gen_range(2..=params.max_sites.max(2));
            let inst: Instance<f64> = Instance::new(
                (0..m).map(|_| rng.gen_range(1..12) as f64).collect(),
                (0..n)
                    .map(|_| {
                        (0..m)
                            .map(|_| {
                                if rng.gen_bool(sparsity) {
                                    0.0
                                } else {
                                    rng.gen_range(1..10) as f64
                                }
                            })
                            .collect()
                    })
                    .collect(),
            )
            .expect("valid instance");
            let plain = AmfSolver::new().allocate(&inst);
            let enhanced = AmfSolver::enhanced().allocate(&inst);
            if plain.total() <= 0.0 {
                continue;
            }
            counted += 1;
            total_ratio += enhanced.total() / plain.total();
            let mp = min_share(plain.aggregates());
            let me = min_share(enhanced.aggregates());
            min_ratio += if mp > 0.0 { me / mp } else { 1.0 };
            jain_p += jain_index(plain.aggregates());
            jain_e += jain_index(enhanced.aggregates());
        }
        let c = counted.max(1) as f64;
        table.row(vec![
            format!("{sparsity:.1}"),
            fmt4(total_ratio / c),
            fmt4(min_ratio / c),
            fmt4(jain_p / c),
            fmt4(jain_e / c),
        ]);
    }
    ctx.emit("e11_si_price", &table);
    table
}

/// Parameters for E12.
#[derive(Debug, Clone)]
pub struct QuantumParams {
    /// Reallocation quanta swept (0 encodes event-driven).
    pub quanta: Vec<f64>,
    /// Jobs per batch.
    pub n_jobs: usize,
    /// Sites.
    pub n_sites: usize,
    /// Skew.
    pub alpha: f64,
    /// Seeds averaged over.
    pub seeds: u64,
}

impl Default for QuantumParams {
    fn default() -> Self {
        QuantumParams {
            quanta: vec![0.0, 5.0, 20.0, 50.0, 100.0],
            n_jobs: 40,
            n_sites: 8,
            alpha: 1.2,
            seeds: 3,
        }
    }
}

impl QuantumParams {
    /// Tiny configuration for smoke tests.
    pub fn fast() -> Self {
        QuantumParams {
            quanta: vec![0.0, 50.0],
            n_jobs: 6,
            n_sites: 3,
            alpha: 1.2,
            seeds: 1,
        }
    }
}

/// E12: the cost of scheduling-round staleness — mean JCT and
/// reallocation count as the reallocation quantum grows (0 =
/// event-driven, the idealized fluid model used elsewhere).
pub fn reallocation_quantum(ctx: &ExpContext, params: &QuantumParams) -> Table {
    use amf_metrics::fmt2;
    use amf_sim::{simulate, SimConfig, SplitStrategy};
    use amf_workload::trace::Trace;

    ctx.log(&format!("[E12] reallocation quantum: {params:?}"));
    let mut table = Table::new(
        "E12: mean JCT and scheduler invocations vs reallocation quantum",
        &["quantum", "mean_jct", "makespan", "reallocations"],
    );
    for &q in &params.quanta {
        let mut jct = 0.0;
        let mut makespan = 0.0;
        let mut reallocs = 0usize;
        for seed in 0..params.seeds {
            let trace = Trace::batch(&super::elastic_workload(
                params.alpha,
                params.n_jobs,
                params.n_sites,
                params.n_sites.min(4),
                seed,
            ));
            let config = SimConfig {
                split: SplitStrategy::BalancedProgress { repair_rounds: 4 },
                reallocation_quantum: if q > 0.0 { Some(q) } else { None },
            };
            let report = simulate(&trace, &AmfSolver::new(), &config);
            jct += report.mean_jct();
            makespan += report.makespan;
            reallocs += report.reallocations;
        }
        let k = params.seeds as f64;
        table.row(vec![
            if q > 0.0 {
                format!("{q:.0}")
            } else {
                "event-driven".to_owned()
            },
            fmt2(jct / k),
            fmt2(makespan / k),
            format!("{}", reallocs / params.seeds as usize),
        ]);
    }
    ctx.emit("e12_quantum", &table);
    table
}

/// Parameters for E13.
#[derive(Debug, Clone)]
pub struct SlowdownParams {
    /// Offered load.
    pub load: f64,
    /// Jobs.
    pub n_jobs: usize,
    /// Sites.
    pub n_sites: usize,
    /// Sites per job.
    pub sites_per_job: usize,
    /// Skew.
    pub alpha: f64,
    /// Mean job work.
    pub mean_work: f64,
    /// Seeds averaged over.
    pub seeds: u64,
}

impl Default for SlowdownParams {
    fn default() -> Self {
        SlowdownParams {
            load: 0.85,
            n_jobs: 100,
            n_sites: 8,
            sites_per_job: 4,
            alpha: 1.2,
            mean_work: 800.0,
            seeds: 3,
        }
    }
}

impl SlowdownParams {
    /// Tiny configuration for smoke tests.
    pub fn fast() -> Self {
        SlowdownParams {
            load: 0.5,
            n_jobs: 10,
            n_sites: 3,
            sites_per_job: 2,
            alpha: 1.2,
            mean_work: 200.0,
            seeds: 1,
        }
    }
}

/// E13: per-job **slowdown** (JCT divided by the job's alone-in-the-
/// system completion time) under load: the classic online fairness
/// metric. Fair policies bound the tail; SRPT (the efficiency reference)
/// minimizes the mean but lets the tail explode.
pub fn slowdown_fairness(ctx: &ExpContext, params: &SlowdownParams) -> Table {
    use amf_core::PerSiteMaxMin;
    use amf_metrics::{fmt2, percentile};
    use amf_sim::{simulate, simulate_dynamic, SimConfig, SplitStrategy, SrptPerSite};
    use amf_workload::arrivals::{poisson_arrivals, rate_for_load};
    use amf_workload::trace::Trace;
    use amf_workload::{
        CapacityModel, DemandModel, SitePlacement, SiteSkew, SizeDist, WorkloadConfig,
    };
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    ctx.log(&format!("[E13] slowdown fairness: {params:?}"));
    let mut table = Table::new(
        "E13: per-job slowdown at load (JCT / alone-in-system JCT)",
        &["policy", "mean", "p95", "max", "jain"],
    );
    let mut acc: Vec<(String, Vec<f64>)> = vec![
        ("amf+jct".into(), Vec::new()),
        ("per-site-max-min".into(), Vec::new()),
        ("srpt-per-site".into(), Vec::new()),
    ];
    for seed in 0..params.seeds {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(97) + 5);
        let workload = WorkloadConfig {
            n_sites: params.n_sites,
            site_capacity: 100.0,
            capacity_model: CapacityModel::Uniform,
            n_jobs: params.n_jobs,
            sites_per_job: params.sites_per_job,
            // Heavy-tailed sizes: fairness-vs-SRPT differences live in the
            // tail (with light tails SRPT rarely starves anyone).
            total_work: SizeDist::BoundedPareto {
                shape: 1.2,
                min: params.mean_work / 10.0,
                max: params.mean_work * 40.0,
            },
            total_parallelism: SizeDist::Constant { value: 30.0 },
            skew: SiteSkew::Zipf {
                alpha: params.alpha,
            },
            placement: SitePlacement::Popularity { gamma: 1.0 },
            demand_model: DemandModel::ElasticPerSite,
        }
        .generate(&mut rng);
        let mean_work = SizeDist::BoundedPareto {
            shape: 1.2,
            min: params.mean_work / 10.0,
            max: params.mean_work * 40.0,
        }
        .mean();
        let rate = rate_for_load(params.load, 100.0 * params.n_sites as f64, mean_work);
        let arrivals = poisson_arrivals(params.n_jobs, rate, &mut rng);
        let trace = Trace::with_arrivals(&workload, &arrivals);
        // Alone-in-system ideal: slowest portion at full demand/capacity.
        let ideals: Vec<f64> = trace
            .jobs
            .iter()
            .map(|j| {
                (0..params.n_sites)
                    .map(|s| {
                        if j.work[s] > 0.0 {
                            j.work[s] / j.demand[s].min(trace.capacities[s])
                        } else {
                            0.0
                        }
                    })
                    .fold(0.0f64, f64::max)
            })
            .collect();
        let reports = [
            simulate(
                &trace,
                &AmfSolver::new(),
                &SimConfig {
                    split: SplitStrategy::BalancedProgress { repair_rounds: 4 },
                    ..SimConfig::default()
                },
            ),
            simulate(&trace, &PerSiteMaxMin, &SimConfig::default()),
            simulate_dynamic(&trace, &SrptPerSite),
        ];
        for (slot, report) in acc.iter_mut().zip(&reports) {
            for (outcome, &ideal) in report.jobs.iter().zip(&ideals) {
                if let (Some(jct), true) = (outcome.jct(), ideal > 0.0) {
                    slot.1.push(jct / ideal);
                }
            }
        }
    }
    for (name, slowdowns) in &acc {
        let mean = slowdowns.iter().sum::<f64>() / slowdowns.len().max(1) as f64;
        table.row(vec![
            name.clone(),
            fmt2(mean),
            fmt2(percentile(slowdowns, 95.0)),
            fmt2(slowdowns.iter().copied().fold(0.0, f64::max)),
            amf_metrics::fmt4(amf_metrics::jain_index(slowdowns)),
        ]);
    }
    ctx.emit("e13_slowdown", &table);
    table
}

/// Parameters for E14.
#[derive(Debug, Clone)]
pub struct FairnessPriceParams {
    /// Skew levels swept.
    pub alphas: Vec<f64>,
    /// Jobs per batch.
    pub n_jobs: usize,
    /// Sites.
    pub n_sites: usize,
    /// Seeds averaged over.
    pub seeds: u64,
}

impl Default for FairnessPriceParams {
    fn default() -> Self {
        FairnessPriceParams {
            alphas: vec![0.0, 1.0, 2.0],
            n_jobs: 50,
            n_sites: 8,
            seeds: 3,
        }
    }
}

impl FairnessPriceParams {
    /// Tiny configuration for smoke tests.
    pub fn fast() -> Self {
        FairnessPriceParams {
            alphas: vec![1.0],
            n_jobs: 8,
            n_sites: 3,
            seeds: 1,
        }
    }
}

/// E14: the **price of fairness** — mean JCT of the fair policies divided
/// by SRPT's (the unfair mean-JCT reference that needs job-size oracles
/// and offers no isolation). Quantifies what AMF's guarantees cost in raw
/// efficiency.
pub fn fairness_price(ctx: &ExpContext, params: &FairnessPriceParams) -> Table {
    use amf_core::PerSiteMaxMin;
    use amf_metrics::fmt4;
    use amf_sim::{simulate, simulate_dynamic, SimConfig, SplitStrategy, SrptPerSite};
    use amf_workload::trace::Trace;

    ctx.log(&format!("[E14] price of fairness: {params:?}"));
    let mut table = Table::new(
        "E14: mean-JCT ratio vs the SRPT efficiency reference",
        &["alpha", "amf+jct/srpt", "psmf/srpt"],
    );
    for &alpha in &params.alphas {
        let mut amf = 0.0;
        let mut psmf = 0.0;
        let mut srpt = 0.0;
        for seed in 0..params.seeds {
            let trace = Trace::batch(&super::elastic_workload(
                alpha,
                params.n_jobs,
                params.n_sites,
                params.n_sites.min(4),
                seed,
            ));
            amf += simulate(
                &trace,
                &AmfSolver::new(),
                &SimConfig {
                    split: SplitStrategy::BalancedProgress { repair_rounds: 4 },
                    ..SimConfig::default()
                },
            )
            .mean_jct();
            psmf += simulate(&trace, &PerSiteMaxMin, &SimConfig::default()).mean_jct();
            srpt += simulate_dynamic(&trace, &SrptPerSite).mean_jct();
        }
        table.row(vec![
            format!("{alpha:.1}"),
            fmt4(amf / srpt),
            fmt4(psmf / srpt),
        ]);
    }
    ctx.emit("e14_fairness_price", &table);
    table
}

/// Parameters for E15.
#[derive(Debug, Clone)]
pub struct ServiceFairnessParams {
    /// Offered load.
    pub load: f64,
    /// Jobs injected.
    pub n_jobs: usize,
    /// Sites.
    pub n_sites: usize,
    /// Sites per job.
    pub sites_per_job: usize,
    /// Mean job work.
    pub mean_work: f64,
    /// Sampling interval for the fairness timeline.
    pub sample_every: f64,
    /// Seeds averaged over.
    pub seeds: u64,
}

impl Default for ServiceFairnessParams {
    fn default() -> Self {
        ServiceFairnessParams {
            load: 0.7,
            n_jobs: 80,
            n_sites: 8,
            sites_per_job: 4,
            mean_work: 800.0,
            sample_every: 20.0,
            seeds: 3,
        }
    }
}

impl ServiceFairnessParams {
    /// Tiny configuration for smoke tests.
    pub fn fast() -> Self {
        ServiceFairnessParams {
            load: 0.5,
            n_jobs: 8,
            n_sites: 3,
            sites_per_job: 2,
            mean_work: 200.0,
            sample_every: 10.0,
            seeds: 1,
        }
    }
}

/// E15: fairness of *service over time* in the online setting, measured
/// by driving the embeddable [`Scheduler`](amf_sim::scheduler::Scheduler):
/// at every sampling instant, the Jain index of active jobs'
/// `service / time-in-system` (their average received rate). The online
/// form of the abstract's balance claim.
pub fn service_fairness(ctx: &ExpContext, params: &ServiceFairnessParams) -> Table {
    use amf_core::PerSiteMaxMin;
    use amf_metrics::{fmt4, jain_index};
    use amf_sim::scheduler::Scheduler;
    use amf_sim::DynamicPolicy;
    use amf_workload::arrivals::{poisson_arrivals, rate_for_load};
    use amf_workload::{
        CapacityModel, DemandModel, SitePlacement, SiteSkew, SizeDist, WorkloadConfig,
    };
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    ctx.log(&format!("[E15] service fairness over time: {params:?}"));
    let mut table = Table::new(
        "E15: Jain index of active jobs' average service rate (timeline mean)",
        &["policy", "mean_jain", "min_jain", "samples"],
    );
    let make_policies = || -> Vec<(&'static str, Box<dyn DynamicPolicy>)> {
        vec![
            ("amf", Box::new(AmfSolver::new())),
            ("per-site-max-min", Box::new(PerSiteMaxMin)),
        ]
    };
    let mut acc: Vec<(f64, f64, usize)> = vec![(0.0, f64::INFINITY, 0); 2];
    for seed in 0..params.seeds {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(131) + 7);
        let workload = WorkloadConfig {
            n_sites: params.n_sites,
            site_capacity: 100.0,
            capacity_model: CapacityModel::Uniform,
            n_jobs: params.n_jobs,
            sites_per_job: params.sites_per_job,
            total_work: SizeDist::Exponential {
                mean: params.mean_work,
            },
            total_parallelism: SizeDist::Constant { value: 30.0 },
            skew: SiteSkew::Zipf { alpha: 1.2 },
            placement: SitePlacement::Popularity { gamma: 1.0 },
            demand_model: DemandModel::ElasticPerSite,
        }
        .generate(&mut rng);
        let rate = rate_for_load(params.load, 100.0 * params.n_sites as f64, params.mean_work);
        let arrivals = poisson_arrivals(params.n_jobs, rate, &mut rng);

        for (p, (_, policy)) in make_policies().into_iter().enumerate() {
            let mut sched = Scheduler::new(vec![100.0; params.n_sites], policy);
            let mut ids = Vec::new();
            let mut next_arrival = 0usize;
            let mut next_sample = params.sample_every;
            let mut jains = Vec::new();
            let horizon = arrivals.last().copied().unwrap_or(0.0) + 20.0 * params.mean_work / 100.0;
            while sched.now() < horizon || sched.active_count() > 0 {
                // Next boundary: arrival or sample.
                let t_arr = arrivals.get(next_arrival).copied().unwrap_or(f64::INFINITY);
                let t_next = t_arr.min(next_sample);
                if !t_next.is_finite() && sched.active_count() == 0 {
                    break;
                }
                let step = (t_next - sched.now()).max(0.0);
                if step.is_finite() {
                    sched.advance(step);
                } else {
                    sched.advance(10.0 * params.mean_work / 100.0);
                }
                if (sched.now() - t_arr).abs() < 1e-9 {
                    let job = &workload.jobs[next_arrival];
                    ids.push(sched.submit(job.work.clone(), job.demand.clone()));
                    next_arrival += 1;
                }
                if sched.now() + 1e-9 >= next_sample {
                    next_sample = sched.now() + params.sample_every;
                    let rates: Vec<f64> = ids
                        .iter()
                        .filter_map(|&id| {
                            let j = sched.job(id);
                            if j.completed_at.is_none() && sched.now() > j.submitted_at {
                                Some(j.service / (sched.now() - j.submitted_at))
                            } else {
                                None
                            }
                        })
                        .collect();
                    if rates.len() >= 2 {
                        jains.push(jain_index(&rates));
                    }
                }
                if sched.now() > 100.0 * horizon {
                    break; // starvation guard; cannot happen with positive caps
                }
            }
            let mean = jains.iter().sum::<f64>() / jains.len().max(1) as f64;
            let min = jains.iter().copied().fold(f64::INFINITY, f64::min);
            acc[p].0 += mean;
            acc[p].1 = acc[p].1.min(min);
            acc[p].2 += jains.len();
        }
    }
    for ((name, _), (mean_sum, min, samples)) in make_policies().iter().zip(&acc) {
        table.row(vec![
            name.to_string(),
            fmt4(mean_sum / params.seeds as f64),
            fmt4(if min.is_finite() { *min } else { 1.0 }),
            samples.to_string(),
        ]);
    }
    ctx.emit("e15_service_fairness", &table);
    table
}

/// Parameters for E16.
#[derive(Debug, Clone)]
pub struct GranularityParams {
    /// Task durations swept (smaller = closer to fluid).
    pub task_durations: Vec<f64>,
    /// Jobs per batch.
    pub n_jobs: usize,
    /// Sites.
    pub n_sites: usize,
    /// Skew.
    pub alpha: f64,
    /// Seeds averaged over.
    pub seeds: u64,
}

impl Default for GranularityParams {
    fn default() -> Self {
        GranularityParams {
            task_durations: vec![5.0, 20.0, 80.0],
            n_jobs: 30,
            n_sites: 6,
            alpha: 1.2,
            seeds: 3,
        }
    }
}

impl GranularityParams {
    /// Tiny configuration for smoke tests.
    pub fn fast() -> Self {
        GranularityParams {
            task_durations: vec![50.0],
            n_jobs: 6,
            n_sites: 3,
            alpha: 1.2,
            seeds: 1,
        }
    }
}

/// E16: execution-granularity check — mean JCT of the same workload under
/// the fluid engine, the slot-rounded engine, and the task-granular
/// (non-preemptive) engine across task durations. Verifies the fluid
/// results used everywhere else are not an artifact of infinite
/// divisibility.
pub fn granularity(ctx: &ExpContext, params: &GranularityParams) -> Table {
    use amf_metrics::fmt2;
    use amf_sim::slots::simulate_slots;
    use amf_sim::tasks::{simulate_tasks, TaskTrace};
    use amf_sim::{simulate, SimConfig};
    use amf_workload::trace::Trace;

    ctx.log(&format!("[E16] execution granularity: {params:?}"));
    let mut table = Table::new(
        "E16: mean JCT — fluid vs slot-rounded vs task-granular engines",
        &["task_duration", "fluid", "slots", "tasks", "tasks/fluid"],
    );
    for &dur in &params.task_durations {
        let mut fluid = 0.0;
        let mut slots = 0.0;
        let mut tasks = 0.0;
        for seed in 0..params.seeds {
            let trace = Trace::batch(&super::elastic_workload(
                params.alpha,
                params.n_jobs,
                params.n_sites,
                params.n_sites.min(3),
                seed,
            ));
            fluid += simulate(&trace, &AmfSolver::new(), &SimConfig::default()).mean_jct();
            slots += simulate_slots(&trace, &AmfSolver::new()).mean_jct();
            let task_trace = TaskTrace::from_trace(&trace, dur);
            tasks += simulate_tasks(&task_trace, &AmfSolver::new()).mean_jct();
        }
        let k = params.seeds as f64;
        table.row(vec![
            format!("{dur:.0}"),
            fmt2(fluid / k),
            fmt2(slots / k),
            fmt2(tasks / k),
            amf_metrics::fmt4(tasks / fluid),
        ]);
    }
    ctx.emit("e16_granularity", &table);
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e16_runs() {
        let params = GranularityParams::fast();
        let table = granularity(&ExpContext::silent(), &params);
        assert_eq!(table.n_rows(), params.task_durations.len());
    }

    #[test]
    fn e15_runs() {
        let table = service_fairness(&ExpContext::silent(), &ServiceFairnessParams::fast());
        assert_eq!(table.n_rows(), 2);
    }

    #[test]
    fn e14_runs() {
        let params = FairnessPriceParams::fast();
        let table = fairness_price(&ExpContext::silent(), &params);
        assert_eq!(table.n_rows(), params.alphas.len());
    }

    #[test]
    fn e13_runs() {
        let table = slowdown_fairness(&ExpContext::silent(), &SlowdownParams::fast());
        assert_eq!(table.n_rows(), 3);
    }

    #[test]
    fn e12_runs_and_coarse_quanta_reduce_invocations() {
        let params = QuantumParams::fast();
        let table = reallocation_quantum(&ExpContext::silent(), &params);
        assert_eq!(table.n_rows(), params.quanta.len());
    }

    #[test]
    fn e10_weighted_classes_track_weights() {
        let params = WeightedParams::fast();
        let table = weighted_fairness(&ExpContext::silent(), &params);
        assert_eq!(table.n_rows(), params.weight_classes.len());
    }

    #[test]
    fn e11_runs() {
        let params = SiPriceParams::fast();
        let table = si_price(&ExpContext::silent(), &params);
        assert_eq!(table.n_rows(), params.sparsity_levels.len());
    }
}
