//! E8: AMF solver runtime scaling.
use amf_bench::experiments::perf::{solver_runtime, RuntimeParams};
use amf_bench::ExpContext;

fn main() {
    solver_runtime(&ExpContext::new(), &RuntimeParams::default());
}
