//! E5: fairness-property satisfaction rates (exact arithmetic).
use amf_bench::experiments::props::{property_rates, PropertyParams};
use amf_bench::ExpContext;

fn main() {
    property_rates(&ExpContext::new(), &PropertyParams::default());
}
