//! E9: solver cross-validation (flow vs brute force vs f64).
use amf_bench::experiments::perf::{solver_agreement, AgreementParams};
use amf_bench::ExpContext;

fn main() {
    solver_agreement(&ExpContext::new(), &AgreementParams::default());
}
