//! E1: balance of aggregate allocations vs skew.
use amf_bench::experiments::balance::{balance_vs_skew, BalanceParams};
use amf_bench::ExpContext;

fn main() {
    balance_vs_skew(&ExpContext::new(), &BalanceParams::default());
}
