//! Run every experiment (E1–E9) with default parameters, printing each
//! table and writing CSVs to the results directory.
use amf_bench::{experiments, ExpContext};

fn main() {
    let ctx = ExpContext::new();
    experiments::run_all(&ctx);
    ctx.write_report();
}
