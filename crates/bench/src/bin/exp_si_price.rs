//! E11: the price of the sharing-incentive guarantee.
use amf_bench::experiments::ext::{si_price, SiPriceParams};
use amf_bench::ExpContext;

fn main() {
    si_price(&ExpContext::new(), &SiPriceParams::default());
}
