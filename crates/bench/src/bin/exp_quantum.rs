//! E12: JCT vs scheduling-round quantum (allocation staleness).
use amf_bench::experiments::ext::{reallocation_quantum, QuantumParams};
use amf_bench::ExpContext;

fn main() {
    reallocation_quantum(&ExpContext::new(), &QuantumParams::default());
}
