//! E7: online JCT vs offered load.
use amf_bench::experiments::online::{online_load, OnlineParams};
use amf_bench::ExpContext;

fn main() {
    online_load(&ExpContext::new(), &OnlineParams::default());
}
