//! Seedable load generator for `amf-serve` — `cargo xtask bench` companion.
//!
//! Boots in-process servers on ephemeral ports and drives them over real
//! TCP through the blocking [`ServeClient`], then writes a
//! machine-readable report (schema `amf-bench-serve/v1`) with three arms:
//!
//! * `closed_loop` — one tenant, one connection, requests issued
//!   back-to-back (next request after the previous reply): the intrinsic
//!   per-request service latency and single-session throughput ceiling;
//! * `open_loop` — several client threads, each owning its tenants and
//!   firing requests on a seeded Poisson schedule; latency is measured
//!   from the *scheduled* arrival instant, so queueing delay under load is
//!   visible (no coordinated omission);
//! * `coalescing` — the same burst script against a coalescing server and
//!   an eager (`coalesce = false`) server, comparing solves-per-request:
//!   staging merges each burst into one repair pass at `Solve`.
//!
//! Every arm audits a sampled fraction of `Solve` replies with
//! `amf-audit` against a client-side mirror of the session (the thread
//! that owns a tenant knows every delta it sent); any violation fails the
//! run. Flags: `--smoke` (tiny arms — CI wiring check), `--seed N`
//! (default 7), `--out PATH` (default `BENCH_serve.json`).

use amf_audit::audit;
use amf_core::{Allocation, FairnessMode, Instance};
use amf_metrics::Histogram;
use amf_serve::{ServeClient, ServeConfig, Server, SolveReply, WireDelta, WireStats};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;
use std::collections::BTreeMap;
use std::time::{Duration, Instant};

/// Latency histogram shape shared by every arm (µs, exponential buckets).
fn latency_hist() -> Histogram {
    Histogram::exponential(1.0, 1e7, 56)
}

#[derive(Serialize)]
struct Report {
    schema: &'static str,
    smoke: bool,
    seed: u64,
    hardware: Hardware,
    closed_loop: ArmReport,
    open_loop: ArmReport,
    coalescing: CoalescingReport,
}

#[derive(Serialize)]
struct Hardware {
    available_parallelism: usize,
    note: String,
}

#[derive(Serialize)]
struct ArmReport {
    name: &'static str,
    tenants: usize,
    client_threads: usize,
    requests: u64,
    elapsed_s: f64,
    throughput_rps: f64,
    /// Open loop only: the offered (scheduled) aggregate request rate.
    offered_rps: Option<f64>,
    mean_us: f64,
    p50_us: f64,
    p95_us: f64,
    p99_us: f64,
    solves: u64,
    audited_solves: u64,
    audit_violations: u64,
}

#[derive(Serialize)]
struct CoalescingReport {
    rounds: usize,
    burst: usize,
    eager: CoalesceArm,
    coalesced: CoalesceArm,
    /// `eager.solves / coalesced.solves` — how much solver work staging
    /// removes for the identical request stream.
    solve_reduction_factor: f64,
}

#[derive(Serialize)]
struct CoalesceArm {
    name: &'static str,
    apply_requests: u64,
    solves: u64,
    solves_per_request: f64,
    deltas_coalesced: u64,
    p95_us: f64,
}

/// Client-side mirror of one tenant's session, built purely from the
/// deltas the owning thread sent. Kept as per-job state keyed by id (not
/// a shadow `IncrementalAmf`) because the server's row order is its slot
/// order, which depends on delta *application* order — coalescing merges
/// bursts, so the audit must align rows by the reply's own `job_ids`.
struct TenantMirror {
    tenant: String,
    caps: Vec<f64>,
    /// Live jobs: id -> (demands, weight).
    jobs: BTreeMap<u64, (Vec<f64>, f64)>,
    live: Vec<u64>,
    next_id: u64,
    solves_seen: u64,
}

impl TenantMirror {
    fn new(tenant: &str, caps: &[f64]) -> TenantMirror {
        TenantMirror {
            tenant: tenant.to_string(),
            caps: caps.to_vec(),
            jobs: BTreeMap::new(),
            live: Vec::new(),
            next_id: 0,
            solves_seen: 0,
        }
    }

    fn apply(&mut self, w: &WireDelta) {
        match w {
            WireDelta::AddJob {
                id,
                demands,
                weight,
            } => {
                self.live.push(*id);
                self.jobs
                    .insert(*id, (demands.clone(), weight.unwrap_or(1.0)));
            }
            WireDelta::RemoveJob { id } => {
                self.live.retain(|j| j != id);
                self.jobs.remove(id);
            }
            WireDelta::DemandChange { id, site, demand } => {
                let (demands, _) = self.jobs.get_mut(id).expect("change targets a live job");
                demands[*site] = *demand;
            }
            WireDelta::CapacityChange { site, capacity } => self.caps[*site] = *capacity,
        }
    }

    /// Draw the next delta for this tenant (always valid against the
    /// mirror's current state).
    fn next_delta(&mut self, rng: &mut StdRng, sites: usize) -> WireDelta {
        let roll: f64 = rng.gen_range(0.0..1.0);
        if self.live.len() < 2 || (roll < 0.25 && self.live.len() < 10) {
            let id = self.next_id;
            self.next_id += 1;
            WireDelta::AddJob {
                id,
                demands: (0..sites).map(|_| rng.gen_range(0.5..4.0)).collect(),
                weight: None,
            }
        } else if roll < 0.40 {
            let id = self.live[rng.gen_range(0..self.live.len())];
            WireDelta::RemoveJob { id }
        } else if roll < 0.90 {
            let id = self.live[rng.gen_range(0..self.live.len())];
            WireDelta::DemandChange {
                id,
                site: rng.gen_range(0..sites),
                demand: rng.gen_range(0.5..4.0),
            }
        } else {
            WireDelta::CapacityChange {
                site: rng.gen_range(0..sites),
                capacity: rng.gen_range(4.0..12.0),
            }
        }
    }

    /// Audit a `Solve` reply against the mirror; returns 1 on violation.
    /// Rows are aligned by the reply's `job_ids`, so the check is
    /// independent of the server's internal slot order.
    fn audit_reply(&self, reply: &SolveReply) -> u64 {
        let expected: Vec<u64> = self.jobs.keys().copied().collect();
        let mut got = reply.job_ids.clone();
        got.sort_unstable();
        if got != expected {
            eprintln!(
                "AUDIT VIOLATION for tenant {}: job set mismatch (served {got:?}, sent {expected:?})",
                self.tenant
            );
            return 1;
        }
        let mut demands = Vec::with_capacity(reply.job_ids.len());
        let mut weights = Vec::with_capacity(reply.job_ids.len());
        for id in &reply.job_ids {
            let (d, w) = &self.jobs[id];
            demands.push(d.clone());
            weights.push(*w);
        }
        let inst = Instance::weighted(self.caps.clone(), demands, weights)
            .expect("mirror state is validated delta-by-delta");
        let report = audit(
            &inst,
            &Allocation::from_split(reply.split.clone()),
            FairnessMode::Enhanced,
        );
        if report.is_certified_amf() {
            0
        } else {
            eprintln!("AUDIT VIOLATION for tenant {}: {report:?}", self.tenant);
            1
        }
    }
}

/// Seed a fresh tenant on the server and in the mirror: create the
/// session, add `jobs` starter jobs, solve once (warm-up, uncounted).
fn seed_tenant(
    client: &mut ServeClient,
    rng: &mut StdRng,
    tenant: &str,
    caps: &[f64],
    jobs: usize,
) -> TenantMirror {
    let mut mirror = TenantMirror::new(tenant, caps);
    let sites = client
        .create_session(tenant, caps, Some("enhanced"))
        .expect("create session");
    assert_eq!(sites, caps.len());
    let deltas: Vec<WireDelta> = (0..jobs)
        .map(|_| mirror.next_delta(rng, caps.len()))
        .collect();
    for d in &deltas {
        mirror.apply(d);
    }
    client.apply_deltas(tenant, &deltas).expect("seed deltas");
    client.solve(tenant).expect("seed solve");
    mirror.solves_seen += 1;
    mirror
}

/// One request against one tenant: mostly `ApplyDeltas`, periodically
/// `Solve` (audited every `audit_every`-th solve). Returns the audit
/// violation count (0 or 1).
fn fire_request(
    client: &mut ServeClient,
    rng: &mut StdRng,
    mirror: &mut TenantMirror,
    sites: usize,
    audit_every: u64,
) -> u64 {
    let roll: f64 = rng.gen_range(0.0..1.0);
    if roll < 0.65 {
        let d = mirror.next_delta(rng, sites);
        mirror.apply(&d);
        client
            .apply_deltas(&mirror.tenant, std::slice::from_ref(&d))
            .expect("apply");
        0
    } else {
        let reply = client.solve(&mirror.tenant).expect("solve");
        mirror.solves_seen += 1;
        if mirror.solves_seen.is_multiple_of(audit_every) {
            mirror.audit_reply(&reply)
        } else {
            0
        }
    }
}

/// Count audited solves a tenant contributed (`seed` solve excluded).
fn audited_of(mirror: &TenantMirror, audit_every: u64) -> u64 {
    mirror.solves_seen / audit_every
}

const CAPS: [f64; 3] = [8.0, 6.0, 10.0];
const AUDIT_EVERY: u64 = 4;

fn closed_loop(seed: u64, iters: u64) -> ArmReport {
    let server = Server::<f64>::bind(ServeConfig::default()).expect("bind");
    let addr = server.addr();
    let mut client = ServeClient::connect(addr).expect("connect");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut mirror = seed_tenant(&mut client, &mut rng, "solo", &CAPS, 4);

    let mut hist = latency_hist();
    let mut violations = 0;
    let started = Instant::now();
    for _ in 0..iters {
        let t0 = Instant::now();
        violations += fire_request(&mut client, &mut rng, &mut mirror, CAPS.len(), AUDIT_EVERY);
        hist.add(t0.elapsed().as_secs_f64() * 1e6);
    }
    let elapsed = started.elapsed().as_secs_f64();

    client.shutdown().expect("shutdown");
    let summary = server.join();
    arm_report(
        "closed-loop-single-tenant",
        1,
        1,
        iters,
        elapsed,
        None,
        &hist,
        &summary,
        audited_of(&mirror, AUDIT_EVERY),
        violations,
    );
    ArmReport {
        name: "closed-loop-single-tenant",
        tenants: 1,
        client_threads: 1,
        requests: iters,
        elapsed_s: elapsed,
        throughput_rps: iters as f64 / elapsed,
        offered_rps: None,
        mean_us: hist.mean(),
        p50_us: hist.percentile(50.0),
        p95_us: hist.percentile(95.0),
        p99_us: hist.percentile(99.0),
        solves: summary.solves,
        audited_solves: audited_of(&mirror, AUDIT_EVERY),
        audit_violations: violations,
    }
}

/// Print one arm's headline numbers as it completes.
#[allow(clippy::too_many_arguments)]
fn arm_report(
    name: &str,
    tenants: usize,
    threads: usize,
    requests: u64,
    elapsed: f64,
    offered: Option<f64>,
    hist: &Histogram,
    summary: &WireStats,
    audited: u64,
    violations: u64,
) {
    let offered = offered.map_or(String::new(), |r| format!(", offered {r:.0} rps"));
    println!(
        "{name}: {tenants} tenant(s) x {threads} thread(s), {requests} requests in {elapsed:.2}s \
         ({:.0} rps{offered}); p50 {:.0}us p95 {:.0}us p99 {:.0}us; \
         {} solves, {audited} audited, {violations} violations",
        requests as f64 / elapsed,
        hist.percentile(50.0),
        hist.percentile(95.0),
        hist.percentile(99.0),
        summary.solves,
    );
}

fn open_loop(
    seed: u64,
    threads: usize,
    tenants_per_thread: usize,
    per_thread: u64,
    rate_per_thread: f64,
) -> ArmReport {
    let server = Server::<f64>::bind(ServeConfig::default()).expect("bind");
    let addr = server.addr();

    struct ThreadOut {
        hist: Histogram,
        violations: u64,
        audited: u64,
    }

    let started = Instant::now();
    let outs: Vec<ThreadOut> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                scope.spawn(move || {
                    let mut client = ServeClient::connect(addr).expect("connect");
                    let mut rng = StdRng::seed_from_u64(seed ^ (0x9e37_79b9 + t as u64));
                    let mut mirrors: Vec<TenantMirror> = (0..tenants_per_thread)
                        .map(|k| {
                            let name = format!("tenant-{t}-{k}");
                            seed_tenant(&mut client, &mut rng, &name, &CAPS, 3)
                        })
                        .collect();
                    let mut hist = latency_hist();
                    let mut violations = 0;
                    let t0 = Instant::now();
                    let mut scheduled = Duration::ZERO;
                    for _ in 0..per_thread {
                        // Poisson arrivals: exponential inter-arrival times.
                        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                        scheduled += Duration::from_secs_f64(-u.ln() / rate_per_thread);
                        if let Some(wait) = scheduled.checked_sub(t0.elapsed()) {
                            std::thread::sleep(wait);
                        }
                        let k = rng.gen_range(0..mirrors.len());
                        violations += fire_request(
                            &mut client,
                            &mut rng,
                            &mut mirrors[k],
                            CAPS.len(),
                            AUDIT_EVERY,
                        );
                        // Latency from the *scheduled* instant: includes
                        // time spent waiting behind a busy server.
                        hist.add((t0.elapsed() - scheduled).as_secs_f64() * 1e6);
                    }
                    ThreadOut {
                        hist,
                        violations,
                        audited: mirrors.iter().map(|m| audited_of(m, AUDIT_EVERY)).sum(),
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("loadgen thread"))
            .collect()
    });
    let elapsed = started.elapsed().as_secs_f64();

    let mut hist = latency_hist();
    let mut violations = 0;
    let mut audited = 0;
    for o in &outs {
        hist.merge(&o.hist);
        violations += o.violations;
        audited += o.audited;
    }
    let mut control = ServeClient::connect(addr).expect("connect control");
    control.shutdown().expect("shutdown");
    let summary = server.join();

    let requests = per_thread * threads as u64;
    arm_report(
        "open-loop-multi-tenant",
        threads * tenants_per_thread,
        threads,
        requests,
        elapsed,
        Some(rate_per_thread * threads as f64),
        &hist,
        &summary,
        audited,
        violations,
    );
    ArmReport {
        name: "open-loop-multi-tenant",
        tenants: threads * tenants_per_thread,
        client_threads: threads,
        requests,
        elapsed_s: elapsed,
        throughput_rps: requests as f64 / elapsed,
        offered_rps: Some(rate_per_thread * threads as f64),
        mean_us: hist.mean(),
        p50_us: hist.percentile(50.0),
        p95_us: hist.percentile(95.0),
        p99_us: hist.percentile(99.0),
        solves: summary.solves,
        audited_solves: audited,
        audit_violations: violations,
    }
}

/// Run the coalescing burst script against one server configuration:
/// `rounds` rounds of `burst` single-delta `ApplyDeltas` requests
/// hammering a small key set, then one `Solve`. Returns the arm record.
fn coalesce_arm(
    name: &'static str,
    coalesce: bool,
    seed: u64,
    rounds: usize,
    burst: usize,
) -> CoalesceArm {
    let server = Server::<f64>::bind(ServeConfig {
        coalesce,
        ..ServeConfig::default()
    })
    .expect("bind");
    let mut client = ServeClient::connect(server.addr()).expect("connect");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut mirror = seed_tenant(&mut client, &mut rng, "bursty", &CAPS, 4);

    let mut hist = latency_hist();
    let mut violations = 0;
    for _ in 0..rounds {
        // Hammer one job's demands so last-writer-wins has work to do.
        let id = mirror.live[rng.gen_range(0..mirror.live.len())];
        for _ in 0..burst {
            let d = WireDelta::DemandChange {
                id,
                site: rng.gen_range(0..CAPS.len()),
                demand: rng.gen_range(0.5..4.0),
            };
            mirror.apply(&d);
            let t0 = Instant::now();
            client
                .apply_deltas(&mirror.tenant, std::slice::from_ref(&d))
                .expect("apply");
            hist.add(t0.elapsed().as_secs_f64() * 1e6);
        }
        let reply = client.solve(&mirror.tenant).expect("solve");
        mirror.solves_seen += 1;
        violations += mirror.audit_reply(&reply);
    }
    assert_eq!(violations, 0, "{name}: audit violations in coalescing arm");
    client.shutdown().expect("shutdown");
    let summary = server.join();

    let apply_requests = (rounds * burst) as u64;
    println!(
        "coalescing/{name}: {apply_requests} apply requests -> {} solves \
         ({:.3} solves/request, {} deltas coalesced)",
        summary.solves,
        summary.solves as f64 / apply_requests as f64,
        summary.deltas_coalesced,
    );
    CoalesceArm {
        name,
        apply_requests,
        solves: summary.solves,
        solves_per_request: summary.solves as f64 / apply_requests as f64,
        deltas_coalesced: summary.deltas_coalesced,
        p95_us: hist.percentile(95.0),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let seed: u64 = flag("--seed").map_or(7, |v| v.parse().expect("--seed takes an integer"));
    let out = flag("--out").unwrap_or_else(|| "BENCH_serve.json".to_string());

    // Arm sizes: seconds in full mode, near-instant in --smoke.
    let (cl_iters, ol_threads, ol_tenants, ol_per_thread, ol_rate, rounds, burst) = if smoke {
        (40, 2, 1, 40, 200.0, 4, 4)
    } else {
        (2400, 4, 2, 700, 300.0, 30, 8)
    };

    let closed = closed_loop(seed, cl_iters);
    let open = open_loop(
        seed.wrapping_add(1),
        ol_threads,
        ol_tenants,
        ol_per_thread,
        ol_rate,
    );
    let eager = coalesce_arm("eager", false, seed.wrapping_add(2), rounds, burst);
    let coalesced = coalesce_arm("coalesced", true, seed.wrapping_add(2), rounds, burst);

    let total_violations = closed.audit_violations + open.audit_violations;
    assert!(
        closed.audited_solves > 0 && open.audited_solves > 0,
        "load generator audited no solves — sampling misconfigured"
    );
    assert!(
        coalesced.solves < eager.solves,
        "coalescing did not reduce solver work ({} vs {})",
        coalesced.solves,
        eager.solves
    );

    let report = Report {
        schema: "amf-bench-serve/v1",
        smoke,
        seed,
        hardware: Hardware {
            available_parallelism: std::thread::available_parallelism().map_or(1, |n| n.get()),
            note: format!(
                "std::thread::available_parallelism() = {}; loopback TCP on one host — \
                 latencies include local socket round trips, not network",
                std::thread::available_parallelism().map_or(1, |n| n.get())
            ),
        },
        closed_loop: closed,
        open_loop: open,
        coalescing: CoalescingReport {
            rounds,
            burst,
            solve_reduction_factor: eager.solves as f64 / coalesced.solves as f64,
            eager,
            coalesced,
        },
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out, json + "\n").expect("write report");
    println!("wrote {out}");
    assert_eq!(total_violations, 0, "sampled audits found violations");
}
