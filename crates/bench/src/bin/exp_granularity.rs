//! E16: fluid vs slot vs task execution granularity.
use amf_bench::experiments::ext::{granularity, GranularityParams};
use amf_bench::ExpContext;

fn main() {
    granularity(&ExpContext::new(), &GranularityParams::default());
}
