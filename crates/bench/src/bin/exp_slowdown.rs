//! E13: per-job slowdown fairness under load.
use amf_bench::experiments::ext::{slowdown_fairness, SlowdownParams};
use amf_bench::ExpContext;

fn main() {
    slowdown_fairness(&ExpContext::new(), &SlowdownParams::default());
}
