//! E2: CDF of aggregate allocations at high skew.
use amf_bench::experiments::balance::{alloc_cdf, CdfParams};
use amf_bench::ExpContext;

fn main() {
    alloc_cdf(&ExpContext::new(), &CdfParams::default());
}
