//! Pinned solver benchmark — `cargo xtask bench`.
//!
//! Measures the shrinking-network solver core against the legacy
//! full-network path on a fixed instance sweep and writes a machine-readable
//! report (schema `amf-bench-solver/v3`) with five sections:
//!
//! * `sweep` — per-point wall time (min of reps after a warm-up) for the
//!   four solver arms, with work counters (v3 adds the CSR rebuild and
//!   bitset-clearing counters) and an audit-agreement verdict;
//! * `e8_400x20` — the headline point: contracted-with-arenas vs the legacy
//!   path on the E8 400-job / 20-site instance, plus the speedup against
//!   the pinned pre-optimization baseline;
//! * `batch` — `solve_batch_with` thread-scaling sweep;
//! * `kernels` — raw max-flow kernel micro-timings (Dinic vs push–relabel);
//!   v3 adds per-run edges visited and the derived ns/edge figure, the
//!   layout-sensitive number the CSR arena is meant to move;
//! * `event_loop` — online simulation throughput on a staggered-arrival
//!   400×20 trace with capacity events: the delta-driven incremental
//!   session vs per-event from-scratch solves, with replay counters and a
//!   report-agreement verdict (v2 addition; v1 readers see a superset).
//!
//! Flags: `--smoke` (1 rep, small batch — CI wiring check), `--out PATH`
//! (default `BENCH_solver.json` in the current directory).

use amf_audit::audit;
use amf_bench::experiments::skewed_workload;
use amf_core::{AmfSolver, FairnessMode, FlowBackend, Instance, SolveOutput, SolverPool};
use amf_flow::AllocationNetwork;
use amf_sim::{
    simulate_incremental_with_stats, simulate_with_capacity_events, AmfIncremental, CapacityEvent,
    SimConfig, SimReport, SplitStrategy,
};
use amf_workload::trace::Trace;
use serde::Serialize;
use std::time::Instant;

/// Wall time of the seed solver (mean of 3 reps) on the 400×20 E8 point,
/// measured on this machine immediately before the shrinking-network work
/// landed. The headline speedup is reported against this pin.
const SEED_BASELINE_400X20_MS: f64 = 16.7257;

#[derive(Serialize)]
struct Report {
    schema: &'static str,
    smoke: bool,
    reps: usize,
    hardware: Hardware,
    sweep: Vec<SweepPoint>,
    e8_400x20: Headline,
    batch: BatchSection,
    kernels: Vec<KernelTiming>,
    event_loop: EventLoopSection,
}

#[derive(Serialize)]
struct Hardware {
    available_parallelism: usize,
    note: String,
}

#[derive(Serialize)]
struct SweepPoint {
    jobs: usize,
    sites: usize,
    arms: Vec<ArmResult>,
    /// Every arm audit-certified AMF and all aggregates agree within 1e-6.
    audit_agreement: bool,
}

#[derive(Serialize)]
struct ArmResult {
    name: &'static str,
    ms: f64,
    rounds: usize,
    max_flows: usize,
    contractions: usize,
    active_job_rounds: usize,
    edges_visited: u64,
    scratch_reuse_hits: u64,
    csr_rebuilds: u64,
    bitset_words_cleared: u64,
}

#[derive(Serialize)]
struct Headline {
    jobs: usize,
    sites: usize,
    seed_baseline_ms: f64,
    legacy_ms: f64,
    contracted_ms: f64,
    speedup_vs_seed_baseline: f64,
    speedup_vs_legacy: f64,
}

#[derive(Serialize)]
struct BatchSection {
    instances: usize,
    jobs: usize,
    sites: usize,
    points: Vec<BatchPoint>,
}

#[derive(Serialize)]
struct BatchPoint {
    threads: usize,
    ms: f64,
    speedup_vs_one_thread: f64,
}

#[derive(Serialize)]
struct EventLoopSection {
    jobs: usize,
    sites: usize,
    capacity_events: usize,
    /// Scheduling events (arrival / portion completion / departure /
    /// capacity change) — identical for both arms when the reports agree.
    reallocations: usize,
    from_scratch_ms: f64,
    incremental_ms: f64,
    speedup_vs_from_scratch: f64,
    /// Freeze rounds the incremental session replayed from its cached
    /// round log across the whole event loop.
    rounds_replayed: usize,
    /// Freeze rounds the incremental session had to re-solve.
    rounds_resolved: usize,
    dinkelbach_iterations: usize,
    max_flows: usize,
    /// Both engines produced the same report (completions within 1e-6,
    /// equal reallocation counts and makespan).
    reports_agree: bool,
}

#[derive(Serialize)]
struct KernelTiming {
    kernel: &'static str,
    jobs: usize,
    sites: usize,
    ms: f64,
    total_flow: f64,
    /// Residual-edge inspections in one cold max-flow run (deterministic
    /// for a fixed instance and kernel).
    edges_visited: u64,
    /// `ms` normalized by `edges_visited` — the per-edge traversal cost the
    /// CSR layout is meant to keep flat as instances grow.
    ns_per_edge: f64,
    /// CSR lowerings during the timed reps (0: the cached view is reused).
    csr_rebuilds: u64,
    /// Bitset words zeroed across the timed reps (frontier reset cost).
    bitset_words_cleared: u64,
}

/// The four solver configurations under measurement.
fn arms() -> [(&'static str, AmfSolver); 4] {
    [
        ("legacy-full-dinic", AmfSolver::new().without_contraction()),
        ("contracted-dinic", AmfSolver::new()),
        (
            "contracted-push-relabel",
            AmfSolver::new().with_flow_backend(FlowBackend::PushRelabel),
        ),
        (
            "contracted-auto",
            AmfSolver::new().with_flow_backend(FlowBackend::Auto),
        ),
    ]
}

/// The E8 instance family: Zipf-skewed placement, contention held at 2×.
fn e8_instance(n: usize, m: usize) -> Instance<f64> {
    let mut workload = skewed_workload(1.2, n, m, m.min(5), 99);
    workload.capacities = vec![15.0 * n as f64 / m as f64; m];
    workload.instance()
}

/// Min-of-reps wall time through a persistent pool (one warm-up first).
fn time_solver(solver: &AmfSolver, inst: &Instance<f64>, reps: usize) -> (f64, SolveOutput<f64>) {
    let mut pool = SolverPool::new();
    let mut out = solver.solve_with_pool(inst, &mut pool);
    let mut best_ms = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        out = solver.solve_with_pool(inst, &mut pool);
        best_ms = best_ms.min(t0.elapsed().as_secs_f64() * 1e3);
    }
    (best_ms, out)
}

fn sweep_point(n: usize, m: usize, reps: usize) -> SweepPoint {
    let inst = e8_instance(n, m);
    let mut results = Vec::new();
    let mut outputs: Vec<SolveOutput<f64>> = Vec::new();
    for (name, solver) in arms() {
        let (ms, out) = time_solver(&solver, &inst, reps);
        results.push(ArmResult {
            name,
            ms,
            rounds: out.stats.rounds,
            max_flows: out.stats.max_flows,
            contractions: out.stats.contractions,
            active_job_rounds: out.stats.active_job_rounds,
            edges_visited: out.stats.edges_visited,
            scratch_reuse_hits: out.stats.scratch_reuse_hits,
            csr_rebuilds: out.stats.csr_rebuilds,
            bitset_words_cleared: out.stats.bitset_words_cleared,
        });
        outputs.push(out);
    }
    let mut agreement = true;
    for out in &outputs {
        if !audit(&inst, &out.allocation, FairnessMode::Plain).is_certified_amf() {
            agreement = false;
        }
        for j in 0..inst.n_jobs() {
            let a = out.allocation.aggregate(j);
            let b = outputs[0].allocation.aggregate(j);
            if (a - b).abs() > 1e-6 * (1.0 + a.abs().max(b.abs())) {
                agreement = false;
            }
        }
    }
    SweepPoint {
        jobs: n,
        sites: m,
        arms: results,
        audit_agreement: agreement,
    }
}

fn headline(reps: usize) -> Headline {
    let inst = e8_instance(400, 20);
    let (legacy_ms, _) = time_solver(&AmfSolver::new().without_contraction(), &inst, reps);
    let (contracted_ms, _) = time_solver(&AmfSolver::new(), &inst, reps);
    Headline {
        jobs: 400,
        sites: 20,
        seed_baseline_ms: SEED_BASELINE_400X20_MS,
        legacy_ms,
        contracted_ms,
        speedup_vs_seed_baseline: SEED_BASELINE_400X20_MS / contracted_ms,
        speedup_vs_legacy: legacy_ms / contracted_ms,
    }
}

fn batch_section(smoke: bool, reps: usize) -> BatchSection {
    let (count, n, m) = if smoke { (4, 40, 8) } else { (16, 150, 12) };
    let instances: Vec<Instance<f64>> = (0..count)
        .map(|k| {
            let mut workload = skewed_workload(1.2, n, m, m.min(5), 1000 + k as u64);
            workload.capacities = vec![15.0 * n as f64 / m as f64; m];
            workload.instance()
        })
        .collect();
    let solver = AmfSolver::new();
    let mut points = Vec::new();
    let mut one_thread_ms = f64::INFINITY;
    for threads in [1usize, 2, 4, 8] {
        let _ = solver.solve_batch_with(&instances, threads);
        let mut best_ms = f64::INFINITY;
        for _ in 0..reps {
            let t0 = Instant::now();
            let outs = solver.solve_batch_with(&instances, threads);
            best_ms = best_ms.min(t0.elapsed().as_secs_f64() * 1e3);
            assert_eq!(outs.len(), instances.len());
        }
        if threads == 1 {
            one_thread_ms = best_ms;
        }
        points.push(BatchPoint {
            threads,
            ms: best_ms,
            speedup_vs_one_thread: one_thread_ms / best_ms,
        });
    }
    BatchSection {
        instances: count,
        jobs: n,
        sites: m,
        points,
    }
}

fn kernel_timings(smoke: bool, reps: usize) -> Vec<KernelTiming> {
    let (n, m) = if smoke { (60, 10) } else { (400, 20) };
    let inst = e8_instance(n, m);
    let mut timings = Vec::new();
    for (kernel, backend) in [
        ("dinic", FlowBackend::Dinic),
        ("push_relabel", FlowBackend::PushRelabel),
    ] {
        let mut net =
            AllocationNetwork::new(inst.demands(), inst.capacities()).with_backend(backend);
        for j in 0..inst.n_jobs() {
            let cap: f64 = inst.demands()[j].iter().sum();
            net.set_job_cap(j, cap);
        }
        // Warm-up sizes the scratch arena; the timed reps run allocation-free.
        net.reset_flow();
        let mut total_flow = net.run_max_flow();
        let edges0 = net.scratch().edges_visited();
        let rebuilds0 = net.scratch().csr_rebuilds();
        let words0 = net.scratch().bitset_words_cleared();
        let mut best_ms = f64::INFINITY;
        for _ in 0..reps {
            net.reset_flow();
            let t0 = Instant::now();
            total_flow = net.run_max_flow();
            best_ms = best_ms.min(t0.elapsed().as_secs_f64() * 1e3);
        }
        // Each rep replays the identical cold run, so per-run work is the
        // accumulated delta divided by the rep count.
        let edges_visited = (net.scratch().edges_visited() - edges0) / reps as u64;
        timings.push(KernelTiming {
            kernel,
            jobs: n,
            sites: m,
            ms: best_ms,
            total_flow,
            edges_visited,
            ns_per_edge: if edges_visited == 0 {
                0.0
            } else {
                best_ms * 1e6 / edges_visited as f64
            },
            csr_rebuilds: net.scratch().csr_rebuilds() - rebuilds0,
            bitset_words_cleared: (net.scratch().bitset_words_cleared() - words0) / reps as u64,
        });
    }
    timings
}

/// Whether two simulation reports describe the same trajectory: equal
/// reallocation counts, makespans and per-job completions within 1e-6.
fn reports_agree(a: &SimReport, b: &SimReport) -> bool {
    if a.jobs.len() != b.jobs.len() || a.reallocations != b.reallocations {
        return false;
    }
    if (a.makespan - b.makespan).abs() > 1e-6 * (1.0 + a.makespan.abs()) {
        return false;
    }
    a.jobs
        .iter()
        .zip(&b.jobs)
        .all(|(x, y)| match (x.completion, y.completion) {
            (Some(p), Some(q)) => (p - q).abs() <= 1e-6 * (1.0 + p.abs().max(q.abs())),
            (None, None) => true,
            _ => false,
        })
}

/// Online event-loop throughput: a staggered-arrival trace plus capacity
/// events, solved per scheduling event either from scratch (through a
/// persistent [`SolverPool`]) or by the delta-driven incremental session.
/// Both arms use the balanced-progress split, which is a pure function of
/// the (unique) fair aggregates — so the two engines must follow the same
/// trajectory and their reports are asserted to agree.
fn event_loop_section(smoke: bool, reps: usize) -> EventLoopSection {
    let (n, m) = if smoke { (60, 10) } else { (400, 20) };
    let mut workload = skewed_workload(1.2, n, m, m.min(5), 99);
    let base_cap = 15.0 * n as f64 / m as f64;
    workload.capacities = vec![base_cap; m];
    // Jobs trickle in over 50 time units, so most scheduling events touch a
    // single job — the case the delta path is built for.
    let arrivals: Vec<f64> = (0..n).map(|j| j as f64 * 50.0 / n as f64).collect();
    let trace = Trace::with_arrivals(&workload, &arrivals);
    let mut events = Vec::new();
    for k in 0..m / 2 {
        let site = (2 * k) % m;
        let t = 8.0 + 12.0 * k as f64;
        events.push(CapacityEvent {
            time: t,
            site,
            capacity: 0.6 * base_cap,
        });
        events.push(CapacityEvent {
            time: t + 6.0,
            site,
            capacity: base_cap,
        });
    }
    let split = SplitStrategy::BalancedProgress { repair_rounds: 4 };
    let config = SimConfig {
        split,
        ..SimConfig::default()
    };
    let solver = AmfSolver::new();

    let mut scratch_report = simulate_with_capacity_events(&trace, &solver, &config, &events);
    let mut from_scratch_ms = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        scratch_report = simulate_with_capacity_events(&trace, &solver, &config, &events);
        from_scratch_ms = from_scratch_ms.min(t0.elapsed().as_secs_f64() * 1e3);
    }

    let policy = AmfIncremental::with_split(solver, split);
    let (mut incr_report, mut stats) =
        simulate_incremental_with_stats(&trace, &policy, &config, &events);
    let mut incremental_ms = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        let (report, s) = simulate_incremental_with_stats(&trace, &policy, &config, &events);
        incremental_ms = incremental_ms.min(t0.elapsed().as_secs_f64() * 1e3);
        incr_report = report;
        stats = s;
    }
    assert!(stats.incremental, "AmfIncremental must provide a session");

    let agree = reports_agree(&scratch_report, &incr_report);
    EventLoopSection {
        jobs: n,
        sites: m,
        capacity_events: events.len(),
        reallocations: incr_report.reallocations,
        from_scratch_ms,
        incremental_ms,
        speedup_vs_from_scratch: from_scratch_ms / incremental_ms,
        rounds_replayed: stats.rounds_replayed,
        rounds_resolved: stats.rounds_resolved,
        dinkelbach_iterations: stats.dinkelbach_iterations,
        max_flows: stats.max_flows,
        reports_agree: agree,
    }
}

fn main() {
    let mut smoke = false;
    let mut out_path = String::from("BENCH_solver.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--out" => {
                out_path = args.next().unwrap_or_else(|| {
                    eprintln!("--out requires a path");
                    std::process::exit(2);
                })
            }
            other => {
                eprintln!("unknown flag {other}; usage: bench_solver [--smoke] [--out PATH]");
                std::process::exit(2);
            }
        }
    }
    let reps = if smoke { 1 } else { 5 };
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());

    let sweep_points: &[(usize, usize)] = &[(50, 20), (100, 20), (200, 20), (400, 20), (400, 5)];
    eprintln!(
        "bench_solver: sweep ({} points, {reps} reps)...",
        sweep_points.len()
    );
    let sweep: Vec<SweepPoint> = sweep_points
        .iter()
        .map(|&(n, m)| sweep_point(n, m, reps))
        .collect();
    eprintln!("bench_solver: headline 400x20...");
    let e8 = headline(reps);
    eprintln!("bench_solver: batch thread sweep...");
    let batch = batch_section(smoke, reps);
    eprintln!("bench_solver: kernel micro-timings...");
    let kernels = kernel_timings(smoke, reps);
    eprintln!("bench_solver: online event loop (incremental vs from-scratch)...");
    let event_loop = event_loop_section(smoke, reps);

    let report = Report {
        schema: "amf-bench-solver/v3",
        smoke,
        reps,
        hardware: Hardware {
            available_parallelism: threads,
            note: format!(
                "std::thread::available_parallelism() = {threads}; batch scaling beyond \
                 that worker count measures scheduling overhead, not parallel speedup"
            ),
        },
        sweep,
        e8_400x20: e8,
        batch,
        kernels,
        event_loop,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out_path, json + "\n").expect("write benchmark report");
    println!(
        "wrote {out_path}: 400x20 contracted {:.4} ms vs legacy {:.4} ms ({:.2}x), \
         {:.2}x vs pinned seed baseline {:.4} ms",
        report.e8_400x20.contracted_ms,
        report.e8_400x20.legacy_ms,
        report.e8_400x20.speedup_vs_legacy,
        report.e8_400x20.speedup_vs_seed_baseline,
        SEED_BASELINE_400X20_MS,
    );
    println!(
        "event loop {}x{}: incremental {:.4} ms vs from-scratch {:.4} ms ({:.2}x), \
         {} rounds replayed / {} re-solved over {} reallocations",
        report.event_loop.jobs,
        report.event_loop.sites,
        report.event_loop.incremental_ms,
        report.event_loop.from_scratch_ms,
        report.event_loop.speedup_vs_from_scratch,
        report.event_loop.rounds_replayed,
        report.event_loop.rounds_resolved,
        report.event_loop.reallocations,
    );
    for point in &report.sweep {
        assert!(
            point.audit_agreement,
            "audit disagreement at {}x{}",
            point.jobs, point.sites
        );
    }
    assert!(
        report.event_loop.reports_agree,
        "incremental and from-scratch engines disagree on the event-loop trace"
    );
}
