//! E6: sharing-incentive shortfall distribution vs skew.
use amf_bench::experiments::props::{sharing_incentive, SharingIncentiveParams};
use amf_bench::ExpContext;

fn main() {
    sharing_incentive(&ExpContext::new(), &SharingIncentiveParams::default());
}
