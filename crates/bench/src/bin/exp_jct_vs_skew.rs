//! E3: batch job completion times vs skew.
use amf_bench::experiments::jct::{jct_vs_skew, JctSkewParams};
use amf_bench::ExpContext;

fn main() {
    jct_vs_skew(&ExpContext::new(), &JctSkewParams::default());
}
