//! E14: price of fairness vs the SRPT efficiency reference.
use amf_bench::experiments::ext::{fairness_price, FairnessPriceParams};
use amf_bench::ExpContext;

fn main() {
    fairness_price(&ExpContext::new(), &FairnessPriceParams::default());
}
