//! E15: service fairness over time (online, via the incremental Scheduler).
use amf_bench::experiments::ext::{service_fairness, ServiceFairnessParams};
use amf_bench::ExpContext;

fn main() {
    service_fairness(&ExpContext::new(), &ServiceFairnessParams::default());
}
