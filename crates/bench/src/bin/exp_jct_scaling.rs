//! E4: JCT scaling in the number of sites and jobs.
use amf_bench::experiments::jct::{jct_scaling, JctScalingParams};
use amf_bench::ExpContext;

fn main() {
    jct_scaling(&ExpContext::new(), &JctScalingParams::default());
}
