//! E10: weighted AMF — aggregates track weights.
use amf_bench::experiments::ext::{weighted_fairness, WeightedParams};
use amf_bench::ExpContext;

fn main() {
    weighted_fairness(&ExpContext::new(), &WeightedParams::default());
}
