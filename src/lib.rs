//! # amf — Aggregate Max-min Fairness for distributed job execution
//!
//! Facade crate re-exporting the whole workspace: a reproduction of
//! **"On Max-min Fair Resource Allocation for Distributed Job Execution"**
//! (Yitong Guan, Chuanyou Li, Xueyan Tang, ICPP 2019,
//! DOI 10.1145/3337821.3337843).
//!
//! Depend on this crate to get everything; depend on the member crates
//! (`amf-core`, `amf-sim`, …) for narrower builds.
//!
//! ```
//! use amf::core::{AmfSolver, Instance, PerSiteMaxMin, AllocationPolicy};
//!
//! // Job 0 is locked to site 0; job 1 spans both sites.
//! let inst = Instance::new(
//!     vec![6.0, 2.0],
//!     vec![vec![6.0, 0.0], vec![6.0, 2.0]],
//! ).unwrap();
//!
//! // Per-site fairness leaves the aggregates unbalanced (3 vs 5)…
//! assert_eq!(PerSiteMaxMin.allocate(&inst).aggregates(), &[3.0, 5.0]);
//! // …while AMF balances them (4 vs 4).
//! let amf = AmfSolver::new().solve(&inst).allocation;
//! assert!((amf.aggregate(0) - 4.0).abs() < 1e-9);
//! ```
//!
//! See the member crates for details:
//!
//! * [`core`] — the model, the AMF solvers and baselines, property
//!   checkers ([`amf_core`]);
//! * [`audit`] — the certificate-based allocation auditor: re-verifies
//!   any allocation with machine-checkable witnesses ([`amf_audit`]);
//! * [`sim`] — the discrete-event fluid simulator and the JCT add-on
//!   ([`amf_sim`]);
//! * [`workload`] — skewed synthetic workload generation
//!   ([`amf_workload`]);
//! * [`metrics`] — fairness metrics and reporting ([`amf_metrics`]);
//! * [`flow`] — the max-flow substrate ([`amf_flow`]);
//! * [`numeric`] — exact rational arithmetic and the `Scalar` abstraction
//!   ([`amf_numeric`]);
//! * [`drf`] — Dominant Resource Fairness, the multi-resource
//!   generalization of the conventional fairness AMF extends
//!   ([`amf_drf`]).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub use amf_audit as audit;
pub use amf_core as core;
pub use amf_drf as drf;
pub use amf_flow as flow;
pub use amf_metrics as metrics;
pub use amf_numeric as numeric;
pub use amf_sim as sim;
pub use amf_workload as workload;
