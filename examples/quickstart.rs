//! Quickstart: compute an AMF allocation, compare it with the per-site
//! baseline, and verify the fairness properties from the paper.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use amf::core::properties::{is_envy_free, is_pareto_efficient, satisfies_sharing_incentive};
use amf::core::{AllocationPolicy, AmfSolver, Instance, PerSiteMaxMin};

fn main() {
    // Two sites (a large and a small datacenter). Job 0's data lives only
    // at site 0; job 1 has tasks at both sites.
    let inst = Instance::new(
        vec![6.0, 2.0],
        vec![
            vec![6.0, 0.0], // job 0: confined to site 0
            vec![6.0, 2.0], // job 1: spans both sites
        ],
    )
    .expect("valid instance");

    // Conventional per-site max-min fairness: each site is split fairly in
    // isolation, but job 1 collects resource at both sites.
    let psmf = PerSiteMaxMin.allocate(&inst);
    println!("per-site max-min aggregates: {:?}", psmf.aggregates());

    // Aggregate Max-min Fairness: the totals themselves are max-min fair.
    let amf = AmfSolver::new().solve(&inst).allocation;
    println!("AMF aggregates:              {:?}", amf.aggregates());
    println!("AMF split matrix:            {:?}", amf.split());

    // The properties the paper proves for AMF.
    println!("pareto efficient:  {}", is_pareto_efficient(&inst, &amf));
    println!("envy free:         {}", is_envy_free(&inst, &amf));
    println!(
        "sharing incentive: {} (not guaranteed for plain AMF!)",
        satisfies_sharing_incentive(&inst, &amf)
    );

    // Enhanced AMF guarantees the sharing incentive property.
    let enhanced = AmfSolver::enhanced().solve(&inst).allocation;
    println!(
        "enhanced AMF aggregates: {:?} (sharing incentive: {})",
        enhanced.aggregates(),
        satisfies_sharing_incentive(&inst, &enhanced)
    );
}
