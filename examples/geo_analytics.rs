//! A geo-distributed analytics scenario: three datacenters of different
//! sizes, analytics jobs whose input partitions (and therefore tasks) are
//! pinned to specific datacenters. Compares allocation balance and job
//! completion times under the per-site baseline, AMF, and AMF with the
//! JCT add-on.
//!
//! ```sh
//! cargo run --release --example geo_analytics
//! ```

use amf::core::{AllocationPolicy, AmfSolver, PerSiteMaxMin};
use amf::metrics::{fmt2, fmt4, jain_index, min_max_ratio, Table};
use amf::sim::{simulate, SimConfig, SplitStrategy};
use amf::workload::trace::{Trace, TraceJob};

/// Hand-built fleet: a big US datacenter, a mid EU one, a small APAC one.
fn fleet() -> Vec<f64> {
    vec![300.0, 150.0, 60.0]
}

/// Analytics jobs: (name, work per DC, max parallel tasks per DC).
/// Tasks far outnumber slots (the elastic regime), so each job can absorb
/// up to its parallelism cap at any DC holding its data — the allocation
/// policy, not the demand matrix, decides who progresses where.
fn jobs() -> Vec<(&'static str, Vec<f64>, Vec<f64>)> {
    vec![
        // A click-log join: data overwhelmingly in US.
        (
            "clicklog-join",
            vec![9000.0, 800.0, 0.0],
            vec![200.0, 200.0, 0.0],
        ),
        // A GDPR-scoped aggregation: EU only.
        ("gdpr-agg", vec![0.0, 5000.0, 0.0], vec![0.0, 200.0, 0.0]),
        // A global dashboard refresh: spread everywhere.
        (
            "dashboard",
            vec![2500.0, 1500.0, 1200.0],
            vec![200.0, 200.0, 200.0],
        ),
        // An APAC-local model scoring job on the small DC.
        (
            "apac-scoring",
            vec![0.0, 0.0, 2400.0],
            vec![0.0, 0.0, 200.0],
        ),
        // A backfill that can run anywhere but is data-heavy in the US.
        (
            "backfill",
            vec![6000.0, 2000.0, 1000.0],
            vec![200.0, 200.0, 200.0],
        ),
    ]
}

fn main() {
    let capacities = fleet();
    let specs = jobs();
    let trace = Trace {
        capacities: capacities.clone(),
        jobs: specs
            .iter()
            .map(|(_, work, demand)| TraceJob {
                arrival: 0.0,
                work: work.clone(),
                demand: demand.clone(),
            })
            .collect(),
    };
    let inst = trace.workload().instance();

    // --- Static allocation comparison -----------------------------------
    let mut table = Table::new(
        "static aggregate allocations (slots)",
        &["job", "per-site-max-min", "amf", "amf-enhanced"],
    );
    let psmf = PerSiteMaxMin.allocate(&inst);
    let amf = AmfSolver::new().allocate(&inst);
    let enhanced = AmfSolver::enhanced().allocate(&inst);
    for (j, (name, _, _)) in specs.iter().enumerate() {
        table.row(vec![
            name.to_string(),
            fmt2(psmf.aggregate(j)),
            fmt2(amf.aggregate(j)),
            fmt2(enhanced.aggregate(j)),
        ]);
    }
    println!("{}", table.render());
    println!(
        "balance: jain psmf={} amf={}   min/max psmf={} amf={}\n",
        fmt4(jain_index(psmf.aggregates())),
        fmt4(jain_index(amf.aggregates())),
        fmt4(min_max_ratio(psmf.aggregates())),
        fmt4(min_max_ratio(amf.aggregates())),
    );

    // --- Completion-time comparison --------------------------------------
    let mut jct = Table::new(
        "batch completion times",
        &["policy", "mean_jct", "makespan", "utilization"],
    );
    let runs: Vec<(&str, Box<dyn AllocationPolicy<f64>>, SimConfig)> = vec![
        (
            "per-site-max-min",
            Box::new(PerSiteMaxMin),
            SimConfig::default(),
        ),
        ("amf", Box::new(AmfSolver::new()), SimConfig::default()),
        (
            "amf + jct add-on",
            Box::new(AmfSolver::new()),
            SimConfig {
                split: SplitStrategy::BalancedProgress { repair_rounds: 4 },
                ..SimConfig::default()
            },
        ),
    ];
    for (name, policy, config) in runs {
        let report = simulate(&trace, policy.as_ref(), &config);
        assert!(report.all_finished(), "{name}: starved jobs");
        jct.row(vec![
            name.to_string(),
            fmt2(report.mean_jct()),
            fmt2(report.makespan),
            fmt4(report.mean_utilization),
        ]);
    }
    println!("{}", jct.render());
}
