//! Multi-resource fairness with DRF: the canonical CPU/memory example and
//! a two-datacenter scenario showing the per-site-DRF imbalance that makes
//! an "aggregate DRF" (future work — see `amf::drf::multi_site`) the
//! natural next step after this paper.
//!
//! ```sh
//! cargo run --release --example multi_resource
//! ```

use amf::drf::{aggregate_drf_heuristic, DrfJob, DrfPool, MultiSiteDrfInstance, PerSiteDrf};
use amf::metrics::{fmt4, Table};

fn main() {
    // --- The DRF paper example: 9 CPUs, 18 GB --------------------------
    let pool = DrfPool::new(
        vec![9.0, 18.0],
        vec![
            DrfJob::new(vec![1.0, 4.0]), // memory-heavy tasks
            DrfJob::new(vec![3.0, 1.0]), // CPU-heavy tasks
        ],
    )
    .expect("valid pool");
    let alloc = pool.solve();
    let mut t = Table::new(
        "single pool (9 CPU, 18 GB): classic DRF example",
        &["job", "tasks", "dominant_share", "cpu", "mem"],
    );
    for j in 0..2 {
        t.row(vec![
            j.to_string(),
            fmt4(alloc.tasks[j]),
            fmt4(alloc.dominant_shares[j]),
            fmt4(alloc.tasks[j] * pool.jobs()[j].demand[0]),
            fmt4(alloc.tasks[j] * pool.jobs()[j].demand[1]),
        ]);
    }
    println!("{}", t.render());
    println!(
        "resource usage: cpu {}/9, mem {}/18\n",
        fmt4(alloc.usage[0]),
        fmt4(alloc.usage[1])
    );

    // --- Two datacenters: per-site DRF is aggregate-unfair -------------
    let task = |cpu: f64, mem: f64| DrfJob::new(vec![cpu, mem]);
    let inst = MultiSiteDrfInstance {
        capacities: vec![vec![100.0, 200.0], vec![100.0, 200.0]],
        jobs: vec![
            // Pinned to DC 0.
            vec![Some(task(1.0, 2.0)), None],
            // Present at both DCs.
            vec![Some(task(1.0, 2.0)), Some(task(1.0, 2.0))],
        ],
    };
    let (_, aggregates) = PerSiteDrf.allocate(&inst).expect("valid instance");
    let mut t2 = Table::new(
        "two DCs, per-site DRF: aggregate dominant shares",
        &["job", "aggregate_dominant_share"],
    );
    for (j, a) in aggregates.iter().enumerate() {
        t2.row(vec![j.to_string(), fmt4(*a)]);
    }
    println!("{}", t2.render());
    println!(
        "The spread job collects {}x the pinned job's aggregate share —\n\
         the multi-resource version of the imbalance AMF repairs for a\n\
         single resource.\n",
        fmt4(aggregates[1] / aggregates[0]),
    );

    // --- The ADRF heuristic repairs it ----------------------------------
    let (_, adrf) = aggregate_drf_heuristic(&inst, 40).expect("valid instance");
    let mut t3 = Table::new(
        "two DCs, aggregate-DRF heuristic: aggregate dominant shares",
        &["job", "aggregate_dominant_share"],
    );
    for (j, a) in adrf.iter().enumerate() {
        t3.row(vec![j.to_string(), fmt4(*a)]);
    }
    println!("{}", t3.render());
    println!(
        "The water-filling heuristic equalizes the aggregates (exact\n\
         aggregate DRF is future work; see amf::drf::multi_site docs)."
    );
}
