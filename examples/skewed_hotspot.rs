//! The paper's headline effect in miniature: as jobs' work distributions
//! over sites grow more skewed, per-site max-min fairness lets
//! widely-spread jobs accumulate big aggregates while concentrated jobs
//! starve; AMF keeps the aggregate allocations balanced.
//!
//! ```sh
//! cargo run --release --example skewed_hotspot
//! ```

use amf::core::{AllocationPolicy, AmfSolver, PerSiteMaxMin};
use amf::metrics::{fmt4, jain_index, min_share, Table};
use amf::workload::{
    CapacityModel, DemandModel, SitePlacement, SiteSkew, SizeDist, WorkloadConfig,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut table = Table::new(
        "allocation balance vs skew (50 jobs, 8 sites, 4 sites/job)",
        &[
            "alpha",
            "jain(psmf)",
            "jain(amf)",
            "min_share(psmf)",
            "min_share(amf)",
        ],
    );
    for alpha in [0.0, 0.5, 1.0, 1.5, 2.0] {
        let workload = WorkloadConfig {
            n_sites: 8,
            site_capacity: 100.0,
            capacity_model: CapacityModel::Uniform,
            n_jobs: 50,
            sites_per_job: 4,
            total_work: SizeDist::Exponential { mean: 1500.0 },
            total_parallelism: SizeDist::Constant { value: 30.0 },
            skew: SiteSkew::Zipf { alpha },
            placement: SitePlacement::Popularity { gamma: 1.0 },
            demand_model: DemandModel::ProportionalToWork,
        }
        .generate(&mut StdRng::seed_from_u64(7));
        let inst = workload.instance();
        let psmf = PerSiteMaxMin.allocate(&inst);
        let amf = AmfSolver::new().allocate(&inst);
        table.row(vec![
            format!("{alpha:.1}"),
            fmt4(jain_index(psmf.aggregates())),
            fmt4(jain_index(amf.aggregates())),
            fmt4(min_share(psmf.aggregates())),
            fmt4(min_share(amf.aggregates())),
        ]);
    }
    println!("{}", table.render());
    println!("AMF's Jain index stays near 1 and its minimum share stays high as skew grows.");
}
