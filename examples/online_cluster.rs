//! An online multi-cluster scheduler: jobs arrive by a Poisson process and
//! the allocator re-runs on every arrival and completion. Compares AMF
//! with the JCT add-on against the per-site baseline at moderate load.
//!
//! ```sh
//! cargo run --release --example online_cluster
//! ```

use amf::core::{AllocationPolicy, AmfSolver, PerSiteMaxMin};
use amf::metrics::{fmt2, fmt4, percentile, Table};
use amf::sim::{simulate, SimConfig, SplitStrategy};
use amf::workload::arrivals::{poisson_arrivals, rate_for_load};
use amf::workload::trace::Trace;
use amf::workload::{
    CapacityModel, DemandModel, SitePlacement, SiteSkew, SizeDist, WorkloadConfig,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(3);
    let n_jobs = 60;
    let mean_work = 600.0;
    let workload = WorkloadConfig {
        n_sites: 6,
        site_capacity: 100.0,
        capacity_model: CapacityModel::Uniform,
        n_jobs,
        sites_per_job: 3,
        total_work: SizeDist::Exponential { mean: mean_work },
        total_parallelism: SizeDist::Constant { value: 40.0 },
        skew: SiteSkew::Zipf { alpha: 1.2 },
        placement: SitePlacement::Popularity { gamma: 1.0 },
        demand_model: DemandModel::ElasticPerSite,
    }
    .generate(&mut rng);

    // Offered load 0.7 of the 600-slot fleet.
    let rate = rate_for_load(0.7, 600.0, mean_work);
    let arrivals = poisson_arrivals(n_jobs, rate, &mut rng);
    let trace = Trace::with_arrivals(&workload, &arrivals);

    let mut table = Table::new(
        "online simulation @ load 0.7 (60 jobs, 6 sites)",
        &[
            "policy",
            "mean_jct",
            "p95_jct",
            "utilization",
            "reallocations",
        ],
    );
    let runs: Vec<(&str, Box<dyn AllocationPolicy<f64>>, SimConfig)> = vec![
        (
            "per-site-max-min",
            Box::new(PerSiteMaxMin),
            SimConfig::default(),
        ),
        (
            "amf + jct add-on",
            Box::new(AmfSolver::new()),
            SimConfig {
                split: SplitStrategy::BalancedProgress { repair_rounds: 4 },
                ..SimConfig::default()
            },
        ),
    ];
    for (name, policy, config) in runs {
        let report = simulate(&trace, policy.as_ref(), &config);
        let jcts = report.jcts();
        table.row(vec![
            name.to_string(),
            fmt2(report.mean_jct()),
            fmt2(percentile(&jcts, 95.0)),
            fmt4(report.mean_utilization),
            report.reallocations.to_string(),
        ]);
    }
    println!("{}", table.render());
}
