//! Offline drop-in subset of the `proptest` API.
//!
//! Provides the property-testing surface this workspace uses — the
//! [`strategy::Strategy`] trait with `prop_map`/`prop_flat_map`/
//! `prop_filter`, range and tuple strategies, [`collection::vec`],
//! [`option::of`], and the [`proptest!`]/[`prop_assert!`]/[`prop_assume!`]
//! macros — on top of the vendored deterministic `rand` generator.
//!
//! Differences from upstream: no shrinking (a failing case reports the
//! assertion panic directly), and the case stream is a fixed deterministic
//! seed rather than an entropy source, so failures always reproduce.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use rand::Rng;
    use std::fmt::Debug;
    use std::ops::{Range, RangeInclusive};

    /// The RNG handed to strategies: the vendored deterministic generator.
    pub type TestRng = rand::rngs::StdRng;

    /// A recipe for generating random values of one type.
    pub trait Strategy {
        /// The type of generated values.
        type Value: Clone + Debug;

        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with a function.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            O: Clone + Debug,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Generate a value, then generate from a strategy derived from it.
        fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S2: Strategy,
            F: Fn(Self::Value) -> S2,
        {
            FlatMap { inner: self, f }
        }

        /// Discard generated values failing a predicate. If the predicate
        /// keeps failing, the whole test case is rejected (like
        /// `prop_assume!`).
        fn prop_filter<F>(self, reason: &'static str, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                inner: self,
                reason,
                f,
            }
        }
    }

    /// Strategy yielding one fixed value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone + Debug>(pub T);

    impl<T: Clone + Debug> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        O: Clone + Debug,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Clone)]
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;

        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// See [`Strategy::prop_filter`].
    #[derive(Clone)]
    pub struct Filter<S, F> {
        inner: S,
        reason: &'static str,
        f: F,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..100 {
                let candidate = self.inner.generate(rng);
                if (self.f)(&candidate) {
                    return candidate;
                }
            }
            crate::test_runner::reject(self.reason)
        }
    }

    impl<T> Strategy for Range<T>
    where
        T: rand::SampleUniform + Clone + Debug,
    {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            rng.gen_range(self.clone())
        }
    }

    impl<T> Strategy for RangeInclusive<T>
    where
        T: rand::SampleUniform + Clone + Debug,
    {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            rng.gen_range(self.clone())
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident : $idx:tt),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A: 0);
    impl_tuple_strategy!(A: 0, B: 1);
    impl_tuple_strategy!(A: 0, B: 1, C: 2);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A length specification: an exact `usize` or a range of lengths.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        /// Exclusive upper bound.
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty vec size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// Strategy producing `Vec`s of values from an element strategy.
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generate `Vec`s with lengths drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.gen_range(self.size.lo..self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    //! `Option` strategies.

    use crate::strategy::{Strategy, TestRng};
    use rand::Rng;

    /// Strategy producing `Option`s of values from an inner strategy.
    #[derive(Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// Generate `None` or `Some(value)` with equal probability.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            if rng.gen_bool(0.5) {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }
}

pub mod test_runner {
    //! The case-execution loop behind the [`proptest!`](crate::proptest) macro.

    use crate::strategy::TestRng;
    use rand::SeedableRng;
    use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
    use std::sync::Once;

    /// Runner configuration.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of successful cases required for the test to pass.
        pub cases: u32,
        /// Total rejection budget (`prop_assume!`/`prop_filter` misses)
        /// before the test aborts.
        pub max_global_rejects: u32,
    }

    impl ProptestConfig {
        /// A config with the given number of cases and default limits.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig {
                cases,
                ..ProptestConfig::default()
            }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 256,
                max_global_rejects: 65536,
            }
        }
    }

    /// Panic payload marking a rejected (not failed) case.
    pub struct Rejected(pub &'static str);

    /// Abort the current case as rejected; the runner retries with fresh
    /// random inputs instead of failing the test.
    pub fn reject(reason: &'static str) -> ! {
        std::panic::panic_any(Rejected(reason))
    }

    /// Suppress the default panic report for [`Rejected`] payloads (they are
    /// control flow, not failures). Installed once per process; all other
    /// panics are forwarded to the previously installed hook.
    fn install_quiet_reject_hook() {
        static INSTALL: Once = Once::new();
        INSTALL.call_once(|| {
            let previous = std::panic::take_hook();
            std::panic::set_hook(Box::new(move |info| {
                if info.payload().downcast_ref::<Rejected>().is_none() {
                    previous(info);
                }
            }));
        });
    }

    /// Run `case` until `config.cases` executions pass. Rejections retry
    /// with the next random inputs; any other panic propagates (failing the
    /// test with the original assertion message).
    pub fn run<F: FnMut(&mut TestRng)>(config: ProptestConfig, mut case: F) {
        install_quiet_reject_hook();
        let mut rng = TestRng::seed_from_u64(0x616d_665f_7465_7374);
        let mut passed = 0u32;
        let mut rejected = 0u32;
        while passed < config.cases {
            match catch_unwind(AssertUnwindSafe(|| case(&mut rng))) {
                Ok(()) => passed += 1,
                Err(payload) => match payload.downcast_ref::<Rejected>() {
                    Some(Rejected(reason)) => {
                        rejected += 1;
                        assert!(
                            rejected <= config.max_global_rejects,
                            "proptest: exceeded {} rejections (last: {reason})",
                            config.max_global_rejects
                        );
                    }
                    None => {
                        eprintln!("proptest: case failed after {passed} passing cases");
                        resume_unwind(payload);
                    }
                },
            }
        }
    }
}

/// Define property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = (<$crate::test_runner::ProptestConfig
                       as ::core::default::Default>::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($cfg:expr);
     $($(#[$meta:meta])*
       fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            #[test]
            fn $name() {
                $crate::test_runner::run($cfg, |__rng| {
                    $(let $pat = $crate::strategy::Strategy::generate(&($strat), __rng);)+
                    $body
                });
            }
        )*
    };
}

/// Assert a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { ::core::assert!($($t)*) };
}

/// Assert equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { ::core::assert_eq!($($t)*) };
}

/// Assert inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { ::core::assert_ne!($($t)*) };
}

/// Discard the current case unless a precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !($cond) {
            $crate::test_runner::reject(::core::stringify!($cond));
        }
    };
}

pub mod prelude {
    //! The glob-import surface: `use proptest::prelude::*;`.

    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        fn ranges_and_maps(x in (1usize..10).prop_map(|v| v * 2), y in 0.0f64..1.0) {
            prop_assert!((2..20).contains(&x) && x % 2 == 0);
            prop_assert!((0.0..1.0).contains(&y));
        }

        fn flat_map_scales(v in (1usize..5).prop_flat_map(|n| crate::collection::vec(0u8..10, n))) {
            prop_assert!(!v.is_empty() && v.len() < 5);
        }

        fn assume_rejects_quietly(x in 0i64..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }

        fn filter_applies(x in (0i64..100).prop_filter("even", |v| v % 2 == 0)) {
            prop_assert_eq!(x % 2, 0);
        }

        fn options_hit_both_arms(pair in (crate::option::of(1i64..5), Just(7u8))) {
            let (opt, seven) = pair;
            prop_assert_eq!(seven, 7);
            if let Some(v) = opt {
                prop_assert!((1..5).contains(&v));
            }
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::TestRng;
        use rand::SeedableRng;
        let strat = crate::collection::vec(0u32..1000, 3usize..6);
        let mut a = TestRng::seed_from_u64(1);
        let mut b = TestRng::seed_from_u64(1);
        for _ in 0..20 {
            assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
        }
    }
}
