//! Offline minimal timing harness exposing the `criterion` API surface this
//! workspace's benches use: `Criterion`, benchmark groups, `Bencher::iter`/
//! `iter_batched`, `BenchmarkId`, and the `criterion_group!`/
//! `criterion_main!` macros.
//!
//! Measurement is deliberately simple — a warmup pass plus a timed loop,
//! reporting mean ns/iteration to stdout — enough to compare alternatives
//! locally without crates.io access. It is not a statistical replacement
//! for upstream criterion.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of the standard optimization barrier, for call sites using
/// `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// The benchmark manager handed to `criterion_group!` targets.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            _criterion: self,
        }
    }

    /// Run a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.into().label, 10, f);
        self
    }
}

/// A named benchmark identifier.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A function name plus a parameter value: `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// A bare parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// A group of related benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run a benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().label);
        run_benchmark(&label, self.sample_size, f);
        self
    }

    /// Run a benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into().label);
        run_benchmark(&label, self.sample_size, |b| f(b, input));
        self
    }

    /// Finish the group (upstream flushes reports here; a no-op for the
    /// shim, which reports as it goes).
    pub fn finish(self) {}
}

/// How batched inputs are sized (accepted for API compatibility; the shim
/// handles all sizes identically).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// The per-benchmark timing driver passed to bench closures.
pub struct Bencher {
    samples: usize,
    /// Accumulated (total time, iterations) over all measured samples.
    measured: (Duration, u64),
}

impl Bencher {
    /// Time a routine: one warmup call, then `samples` timed calls.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        std::hint::black_box(routine());
        let start = Instant::now();
        for _ in 0..self.samples {
            std::hint::black_box(routine());
        }
        self.measured = (start.elapsed(), self.samples as u64);
    }

    /// Time a routine with a fresh input per call; setup time is excluded.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        std::hint::black_box(routine(setup()));
        let mut total = Duration::ZERO;
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            total += start.elapsed();
        }
        self.measured = (total, self.samples as u64);
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, samples: usize, mut f: F) {
    let mut bencher = Bencher {
        samples,
        measured: (Duration::ZERO, 0),
    };
    f(&mut bencher);
    let (elapsed, iters) = bencher.measured;
    if iters == 0 {
        println!("{label}: no measurement recorded");
    } else {
        let per_iter = elapsed.as_nanos() as f64 / iters as f64;
        println!("{label}: {per_iter:.0} ns/iter ({iters} iterations)");
    }
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_and_ids_run() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        let mut runs = 0u32;
        group.bench_function("plain", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        group.bench_with_input(BenchmarkId::new("with_input", 7), &7u32, |b, &x| {
            b.iter_batched(|| x, |v| v + 1, BatchSize::SmallInput)
        });
        group.finish();
        assert!(runs >= 3);
        assert_eq!(BenchmarkId::new("a", 5).label, "a/5");
        assert_eq!(BenchmarkId::from_parameter(5).label, "5");
    }
}
