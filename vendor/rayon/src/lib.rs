//! Offline sequential shim for the `rayon` API surface this workspace uses.
//!
//! `par_iter()`/`into_par_iter()` return a [`prelude::ParIter`] wrapper
//! around the corresponding *sequential* standard-library iterator. The
//! wrapper implements [`Iterator`] (so `collect`, `sum`, and friends work)
//! and adds inherent methods for the rayon-specific surface (`map` and
//! `flat_map_iter` that keep the wrapper, rayon's two-argument `reduce`),
//! so adapter chains compile unchanged and produce identical results —
//! just without parallel speedup.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod prelude {
    //! The glob-import surface: `use rayon::prelude::*;`.

    /// A sequential stand-in for rayon's parallel iterators.
    ///
    /// Implements [`Iterator`] by delegation; rayon-specific adapters are
    /// inherent methods (which take precedence over the trait's), so the
    /// wrapper survives `map`/`filter`/`flat_map_iter` chains and rayon's
    /// two-argument `reduce` resolves correctly.
    pub struct ParIter<I>(I);

    impl<I: Iterator> Iterator for ParIter<I> {
        type Item = I::Item;

        fn next(&mut self) -> Option<I::Item> {
            self.0.next()
        }

        fn size_hint(&self) -> (usize, Option<usize>) {
            self.0.size_hint()
        }
    }

    impl<I: Iterator> ParIter<I> {
        /// Transform each element (rayon: `ParallelIterator::map`).
        pub fn map<O, F>(self, f: F) -> ParIter<std::iter::Map<I, F>>
        where
            F: FnMut(I::Item) -> O,
        {
            ParIter(self.0.map(f))
        }

        /// Keep elements matching a predicate (rayon:
        /// `ParallelIterator::filter`).
        pub fn filter<F>(self, f: F) -> ParIter<std::iter::Filter<I, F>>
        where
            F: FnMut(&I::Item) -> bool,
        {
            ParIter(self.0.filter(f))
        }

        /// Transform-and-keep in one pass (rayon:
        /// `ParallelIterator::filter_map`).
        pub fn filter_map<O, F>(self, f: F) -> ParIter<std::iter::FilterMap<I, F>>
        where
            F: FnMut(I::Item) -> Option<O>,
        {
            ParIter(self.0.filter_map(f))
        }

        /// Map each element to a serial iterator and flatten (rayon:
        /// `ParallelIterator::flat_map_iter`).
        pub fn flat_map_iter<U, F>(self, f: F) -> ParIter<std::iter::FlatMap<I, U, F>>
        where
            U: IntoIterator,
            F: FnMut(I::Item) -> U,
        {
            ParIter(self.0.flat_map(f))
        }

        /// Map each element to another iterable and flatten (rayon:
        /// `ParallelIterator::flat_map`).
        pub fn flat_map<U, F>(self, f: F) -> ParIter<std::iter::FlatMap<I, U, F>>
        where
            U: IntoIterator,
            F: FnMut(I::Item) -> U,
        {
            ParIter(self.0.flat_map(f))
        }

        /// Fold to a single value from an identity (rayon's two-argument
        /// `ParallelIterator::reduce`, unlike `Iterator::reduce`).
        pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> I::Item
        where
            ID: Fn() -> I::Item,
            OP: FnMut(I::Item, I::Item) -> I::Item,
        {
            self.0.fold(identity(), op)
        }
    }

    /// Types convertible into a (here: sequential) "parallel" iterator.
    pub trait IntoParallelIterator {
        /// The element type.
        type Item;
        /// The underlying sequential iterator type.
        type Iter: Iterator<Item = Self::Item>;

        /// Convert into an iterator (sequential in this shim).
        fn into_par_iter(self) -> ParIter<Self::Iter>;
    }

    impl<I: IntoIterator> IntoParallelIterator for I {
        type Item = I::Item;
        type Iter = I::IntoIter;

        fn into_par_iter(self) -> ParIter<Self::Iter> {
            ParIter(self.into_iter())
        }
    }

    /// Types whose references yield (here: sequential) "parallel" iterators.
    pub trait IntoParallelRefIterator<'data> {
        /// The element type (a reference).
        type Item: 'data;
        /// The underlying sequential iterator type.
        type Iter: Iterator<Item = Self::Item>;

        /// Iterate over `&self` (sequential in this shim).
        fn par_iter(&'data self) -> ParIter<Self::Iter>;
    }

    impl<'data, C: ?Sized + 'data> IntoParallelRefIterator<'data> for C
    where
        &'data C: IntoIterator,
    {
        type Item = <&'data C as IntoIterator>::Item;
        type Iter = <&'data C as IntoIterator>::IntoIter;

        fn par_iter(&'data self) -> ParIter<Self::Iter> {
            ParIter(self.into_iter())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_matches_iter() {
        let v = vec![1, 2, 3, 4];
        let doubled: Vec<i32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
        let sum: i32 = v.into_par_iter().sum();
        assert_eq!(sum, 10);
        let range_total: usize = (0..5usize).into_par_iter().map(|i| i * i).sum();
        assert_eq!(range_total, 30);
    }

    #[test]
    fn rayon_only_adapters() {
        let flattened: Vec<usize> = (0..3usize)
            .into_par_iter()
            .flat_map_iter(|i| vec![i, i * 10])
            .collect();
        assert_eq!(flattened, vec![0, 0, 1, 10, 2, 20]);

        let reduced = (1..5i64)
            .into_par_iter()
            .map(|x| x * x)
            .reduce(|| 0, |a, b| a + b);
        assert_eq!(reduced, 30);

        let evens: Vec<i32> = vec![1, 2, 3, 4]
            .par_iter()
            .filter(|x| **x % 2 == 0)
            .map(|x| *x)
            .collect();
        assert_eq!(evens, vec![2, 4]);
    }
}
