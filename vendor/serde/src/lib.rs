//! Offline drop-in subset of the `serde` API.
//!
//! The build environment has no access to crates.io, so this crate provides
//! the small serialization surface the workspace uses, built around a JSON
//! data model ([`Value`]) instead of serde's visitor architecture:
//!
//! * [`Serialize`] — convert `&self` into a [`Value`] tree;
//! * [`Deserialize`] — rebuild `Self` from a [`Value`] tree;
//! * `#[derive(Serialize, Deserialize)]` via the companion `serde_derive`
//!   proc-macro (enabled by the `derive` feature), matching serde's default
//!   representation: structs as maps, enums externally tagged, unit variants
//!   as plain strings.
//!
//! The companion `serde_json` vendor crate renders [`Value`] trees to JSON
//! text and parses them back.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

use std::fmt;

/// A JSON-shaped data tree: the intermediate form every serializable type
/// converts through.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null` (also the encoding of `Option::None`).
    Null,
    /// A boolean.
    Bool(bool),
    /// A number (JSON numbers are all `f64` here).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; insertion order is preserved for stable output.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// The object entries, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(entries) => Some(entries),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

/// Look up a field in an object's entry list; missing fields read as
/// [`Value::Null`] so `Option` fields deserialize to `None`.
pub fn field<'a>(entries: &'a [(String, Value)], name: &str) -> &'a Value {
    const NULL: Value = Value::Null;
    entries
        .iter()
        .find(|(k, _)| k == name)
        .map_or(&NULL, |(_, v)| v)
}

/// A deserialization error: a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Build an error from a message.
    pub fn custom(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Types convertible into a [`Value`] tree.
pub trait Serialize {
    /// Convert `self` into a [`Value`].
    fn to_value(&self) -> Value;
}

/// Types reconstructible from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuild `Self` from a [`Value`].
    fn from_value(v: &Value) -> Result<Self, Error>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

// `Value` round-trips through itself, so callers can parse arbitrary JSON
// without a target type (upstream's `serde_json::Value` use case).
impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool()
            .ok_or_else(|| Error::custom(format!("expected bool, got {v:?}")))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Num(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64()
            .ok_or_else(|| Error::custom(format!("expected number, got {v:?}")))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Num(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|n| n as f32)
    }
}

macro_rules! impl_integer {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(*self as f64)
            }
        }

        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v
                    .as_f64()
                    .ok_or_else(|| Error::custom(format!("expected integer, got {v:?}")))?;
                if n.fract() != 0.0 {
                    return Err(Error::custom(format!("expected integer, got {n}")));
                }
                Ok(n as $t)
            }
        }
    )*};
}

impl_integer!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::custom(format!("expected string, got {v:?}")))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_arr()
            .ok_or_else(|| Error::custom(format!("expected array, got {v:?}")))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        if v.is_null() {
            Ok(None)
        } else {
            T::from_value(v).map(Some)
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Arr(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v.as_arr() {
            Some([a, b]) => Ok((A::from_value(a)?, B::from_value(b)?)),
            _ => Err(Error::custom(format!(
                "expected 2-element array, got {v:?}"
            ))),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Arr(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v.as_arr() {
            Some([a, b, c]) => Ok((A::from_value(a)?, B::from_value(b)?, C::from_value(c)?)),
            _ => Err(Error::custom(format!(
                "expected 3-element array, got {v:?}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn missing_field_reads_as_null() {
        let entries = vec![("a".to_string(), Value::Num(1.0))];
        assert!(field(&entries, "b").is_null());
        assert_eq!(field(&entries, "a").as_f64(), Some(1.0));
    }

    #[test]
    fn option_round_trip() {
        let some: Option<f64> = Some(2.5);
        let none: Option<f64> = None;
        assert_eq!(Option::<f64>::from_value(&some.to_value()).unwrap(), some);
        assert_eq!(Option::<f64>::from_value(&none.to_value()).unwrap(), none);
    }

    #[test]
    fn integers_reject_fractions() {
        assert!(usize::from_value(&Value::Num(1.5)).is_err());
        assert_eq!(usize::from_value(&Value::Num(3.0)).unwrap(), 3);
    }

    #[test]
    fn vec_round_trip() {
        let v = vec![1.0f64, 2.0, 3.5];
        assert_eq!(Vec::<f64>::from_value(&v.to_value()).unwrap(), v);
    }
}
