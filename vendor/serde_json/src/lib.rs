//! Offline drop-in subset of the `serde_json` API: render the vendored
//! serde [`Value`] tree to JSON text ([`to_string`], [`to_string_pretty`])
//! and parse JSON text back ([`from_str`]).
//!
//! Numbers are printed with Rust's `Display` for `f64`, which emits the
//! shortest decimal string that round-trips — the behavior upstream's
//! `float_roundtrip` feature provides. Non-finite numbers (which JSON
//! cannot represent) serialize as `null`.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use serde::{Deserialize, Serialize};
use std::fmt;

pub use serde::Value;

/// A serialization or parse error with a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error::new(e.to_string())
    }
}

/// Serialize a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialize a value to pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parse a value from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    Ok(T::from_value(&value)?)
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Num(n) => {
            if n.is_finite() {
                out.push_str(&n.to_string());
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Arr(items) => write_seq(out, indent, level, '[', ']', items.len(), |out, i| {
            write_value(out, &items[i], indent, level + 1);
        }),
        Value::Obj(entries) => write_seq(out, indent, level, '{', '}', entries.len(), |out, i| {
            let (k, item) = &entries[i];
            write_string(out, k);
            out.push(':');
            if indent.is_some() {
                out.push(' ');
            }
            write_value(out, item, indent, level + 1);
        }),
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    level: usize,
    open: char,
    close: char,
    len: usize,
    mut write_item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', width * (level + 1)));
        }
        write_item(out, i);
    }
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * level));
    }
    out.push(close);
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            None => Err(Error::new("unexpected end of input")),
            Some(b'n') => {
                if self.eat_literal("null") {
                    Ok(Value::Null)
                } else {
                    Err(Error::new(format!("invalid literal at byte {}", self.pos)))
                }
            }
            Some(b't') => {
                if self.eat_literal("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(Error::new(format!("invalid literal at byte {}", self.pos)))
                }
            }
            Some(b'f') => {
                if self.eat_literal("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(Error::new(format!("invalid literal at byte {}", self.pos)))
                }
            }
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(Error::new(format!(
                "unexpected character `{}` at byte {}",
                b as char, self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(entries));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast-forward over the unescaped span.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect the low half.
                                if !self.eat_literal("\\u") {
                                    return Err(Error::new("lone high surrogate"));
                                }
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(Error::new("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid unicode escape"))?,
                            );
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(Error::new("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| Error::new("invalid \\u escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| Error::new("invalid \\u escape"))?;
        self.pos = end;
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_tree() {
        let v = Value::Obj(vec![
            ("name".into(), Value::Str("amf \"quoted\"\n".into())),
            (
                "xs".into(),
                Value::Arr(vec![Value::Num(1.5), Value::Null, Value::Bool(true)]),
            ),
            ("empty".into(), Value::Arr(vec![])),
        ]);
        for text in [
            to_string(&WrappedValue(v.clone())).unwrap(),
            to_string_pretty(&WrappedValue(v.clone())).unwrap(),
        ] {
            assert_eq!(parse_value(&text).unwrap(), v);
        }
    }

    /// Helper: serialize a raw `Value` through the `Serialize` trait.
    struct WrappedValue(Value);
    impl Serialize for WrappedValue {
        fn to_value(&self) -> Value {
            self.0.clone()
        }
    }

    #[test]
    fn floats_round_trip_exactly() {
        for &x in &[0.1, 1.0 / 3.0, 1e-300, 123_456_789.123_456_79, -2.5] {
            let text = to_string(&x).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(back, x, "{text}");
        }
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "{not json",
            "[1,",
            "\"unterminated",
            "{\"a\": }",
            "tru",
            "1 2",
        ] {
            assert!(parse_value(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn parses_escapes_and_surrogates() {
        let v = parse_value(r#""aéb😀c\n""#).unwrap();
        assert_eq!(v, Value::Str("aéb😀c\n".to_string()));
    }
}
