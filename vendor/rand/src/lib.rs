//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! The build environment for this workspace has no access to crates.io, so
//! the handful of `rand` features the workspace actually uses are
//! re-implemented here: a seedable deterministic generator ([`rngs::StdRng`],
//! a SplitMix64-seeded xoshiro256++), uniform sampling over integer and
//! float ranges via [`Rng::gen_range`], [`Rng::gen_bool`], and Fisher–Yates
//! [`seq::SliceRandom::shuffle`]. The stream differs from upstream `rand`
//! (no test in the workspace depends on upstream's exact stream, only on
//! determinism per seed), but the API is call-compatible.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

/// Low-level generator interface: a source of uniform `u64` words.
pub trait RngCore {
    /// The next uniformly distributed 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// The next uniformly distributed 32-bit word.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Construct from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample uniformly from a half-open or inclusive range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Return `true` with probability `p`.
    ///
    /// # Panics
    /// Panics unless `0 <= p <= 1`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of [0,1]");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Map a `u64` to `[0, 1)` with 53 bits of precision.
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types that can be sampled uniformly from a range.
pub trait SampleUniform: PartialOrd + Copy {
    /// Sample uniformly from `[low, high)`.
    fn sample_half_open<G: RngCore + ?Sized>(rng: &mut G, low: Self, high: Self) -> Self;
    /// Sample uniformly from `[low, high]`.
    fn sample_inclusive<G: RngCore + ?Sized>(rng: &mut G, low: Self, high: Self) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<G: RngCore + ?Sized>(rng: &mut G, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as $wide).wrapping_sub(low as $wide) as u128;
                let draw = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                ((low as $wide).wrapping_add(draw as $wide)) as $t
            }
            fn sample_inclusive<G: RngCore + ?Sized>(rng: &mut G, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range: empty range");
                let span = ((high as $wide).wrapping_sub(low as $wide) as u128).wrapping_add(1);
                if span == 0 {
                    // The full domain of a 128-bit type: any draw is valid.
                    return (((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) as $wide) as $t;
                }
                let draw = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                ((low as $wide).wrapping_add(draw as $wide)) as $t
            }
        }
    )*};
}

impl_uniform_int!(
    u8 => u128, u16 => u128, u32 => u128, u64 => u128, usize => u128, u128 => u128,
    i8 => i128, i16 => i128, i32 => i128, i64 => i128, isize => i128, i128 => i128,
);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<G: RngCore + ?Sized>(rng: &mut G, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let u = unit_f64(rng.next_u64()) as $t;
                low + u * (high - low)
            }
            fn sample_inclusive<G: RngCore + ?Sized>(rng: &mut G, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range: empty range");
                let u = unit_f64(rng.next_u64()) as $t;
                low + u * (high - low)
            }
        }
    )*};
}

impl_uniform_float!(f32, f64);

/// Range forms accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one sample from the range.
    fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++
    /// seeded through SplitMix64. Not the upstream `StdRng` stream, but
    /// stable across runs and platforms for a given seed.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into the xoshiro state.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::Rng;

    /// Slice extension: random shuffling.
    pub trait SliceRandom {
        /// Shuffle the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1_000_000u64), b.gen_range(0..1_000_000u64));
        }
        let mut c = StdRng::seed_from_u64(43);
        let same = (0..100)
            .all(|_| StdRng::seed_from_u64(42).gen_range(0..u64::MAX) == c.gen_range(0..u64::MAX));
        assert!(!same);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..17usize);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(0.25..0.75f64);
            assert!((0.25..0.75).contains(&f));
            let big = rng.gen_range(-1000i128..1000);
            assert!((-1000..1000).contains(&big));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.3).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut StdRng::seed_from_u64(3));
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "shuffle left the slice sorted (astronomically unlikely)"
        );
    }
}
