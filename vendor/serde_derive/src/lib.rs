//! `#[derive(Serialize, Deserialize)]` for the vendored serde subset.
//!
//! Implemented without `syn`/`quote` (unavailable offline): the input
//! `TokenStream` is walked directly to extract the type name, generic
//! parameter names, and field/variant names — all the information the
//! value-tree data model needs — and the impl is emitted as a source string
//! parsed back into a `TokenStream`.
//!
//! Supported shapes (everything this workspace derives on):
//! * structs with named fields, optionally generic (`Foo<S>`);
//! * enums whose variants are unit or have named fields (externally tagged:
//!   unit variants serialize as `"Name"`, struct variants as
//!   `{"Name": {fields…}}`).
//!
//! Container/field/variant attributes (`#[serde(...)]`) are not supported
//! and the workspace does not use them; unknown shapes panic with a clear
//! message at macro-expansion time.

use proc_macro::{Delimiter, Group, TokenStream, TokenTree};
use std::fmt::Write;

/// Derive the vendored `serde::Serialize` for a struct or enum.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Serialize)
}

/// Derive the vendored `serde::Deserialize` for a struct or enum.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Serialize,
    Deserialize,
}

struct Input {
    name: String,
    generics: Vec<String>,
    body: Body,
}

enum Body {
    /// Named struct fields.
    Struct(Vec<String>),
    /// Variants: name plus named fields (empty = unit variant).
    Enum(Vec<(String, Vec<String>)>),
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    let parsed = parse_input(input);
    let code = match mode {
        Mode::Serialize => gen_serialize(&parsed),
        Mode::Deserialize => gen_deserialize(&parsed),
    };
    code.parse()
        .expect("serde_derive: generated impl failed to parse")
}

fn ident_of(tok: &TokenTree) -> Option<String> {
    match tok {
        TokenTree::Ident(id) => Some(id.to_string()),
        _ => None,
    }
}

fn is_punct(tok: &TokenTree, c: char) -> bool {
    matches!(tok, TokenTree::Punct(p) if p.as_char() == c)
}

/// Skip attributes (`#[...]`) and a `pub` / `pub(...)` visibility prefix,
/// returning the next index.
fn skip_attrs_and_vis(toks: &[TokenTree], mut i: usize) -> usize {
    loop {
        if i < toks.len() && is_punct(&toks[i], '#') {
            i += 2; // '#' then the [...] group
        } else if i < toks.len() && ident_of(&toks[i]).as_deref() == Some("pub") {
            i += 1;
            if let Some(TokenTree::Group(g)) = toks.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        } else {
            return i;
        }
    }
}

fn parse_input(input: TokenStream) -> Input {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs_and_vis(&toks, 0);
    let kind = ident_of(&toks[i]).expect("serde_derive: expected `struct` or `enum`");
    i += 1;
    let name = ident_of(&toks[i]).expect("serde_derive: expected type name");
    i += 1;

    let mut generics = Vec::new();
    if i < toks.len() && is_punct(&toks[i], '<') {
        i += 1;
        let mut depth = 1usize;
        let mut at_param = true;
        while depth > 0 {
            let tok = &toks[i];
            if is_punct(tok, '<') {
                depth += 1;
            } else if is_punct(tok, '>') {
                depth -= 1;
            } else if is_punct(tok, ',') && depth == 1 {
                at_param = true;
            } else if at_param && depth == 1 {
                if let Some(id) = ident_of(tok) {
                    generics.push(id);
                    at_param = false;
                }
            }
            i += 1;
        }
    }

    // Skip any `where` clause tokens; the body is the next brace group.
    let body_group = loop {
        match &toks[i] {
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => break g.clone(),
            TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis => {
                panic!("serde_derive: tuple structs are not supported (type `{name}`)")
            }
            _ => i += 1,
        }
    };

    let body = match kind.as_str() {
        "struct" => Body::Struct(parse_named_fields(&body_group)),
        "enum" => Body::Enum(parse_variants(&body_group)),
        other => panic!("serde_derive: cannot derive for `{other}`"),
    };
    Input {
        name,
        generics,
        body,
    }
}

fn parse_named_fields(group: &Group) -> Vec<String> {
    let toks: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        i = skip_attrs_and_vis(&toks, i);
        if i >= toks.len() {
            break;
        }
        let field = ident_of(&toks[i]).expect("serde_derive: expected field name");
        fields.push(field);
        i += 1;
        assert!(
            i < toks.len() && is_punct(&toks[i], ':'),
            "serde_derive: expected `:` after field name"
        );
        i += 1;
        // Skip the type: everything until a comma at angle-bracket depth 0.
        let mut depth = 0i32;
        while i < toks.len() {
            if is_punct(&toks[i], '<') {
                depth += 1;
            } else if is_punct(&toks[i], '>') {
                depth -= 1;
            } else if is_punct(&toks[i], ',') && depth == 0 {
                i += 1;
                break;
            }
            i += 1;
        }
    }
    fields
}

fn parse_variants(group: &Group) -> Vec<(String, Vec<String>)> {
    let toks: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        i = skip_attrs_and_vis(&toks, i);
        if i >= toks.len() {
            break;
        }
        let name = ident_of(&toks[i]).expect("serde_derive: expected variant name");
        i += 1;
        let mut fields = Vec::new();
        if let Some(TokenTree::Group(body)) = toks.get(i) {
            match body.delimiter() {
                Delimiter::Brace => {
                    fields = parse_named_fields(body);
                    i += 1;
                }
                Delimiter::Parenthesis => {
                    panic!("serde_derive: tuple variants are not supported (`{name}`)")
                }
                _ => {}
            }
        }
        variants.push((name, fields));
        // Skip discriminants etc. up to the separating comma.
        while i < toks.len() && !is_punct(&toks[i], ',') {
            i += 1;
        }
        i += 1;
    }
    variants
}

/// `impl<S: ::serde::Trait>` + `Name<S>` headers for the generated impl.
fn headers(input: &Input, trait_name: &str) -> (String, String) {
    if input.generics.is_empty() {
        (String::new(), String::new())
    } else {
        let bounds: Vec<String> = input
            .generics
            .iter()
            .map(|g| format!("{g}: ::serde::{trait_name}"))
            .collect();
        (
            format!("<{}>", bounds.join(", ")),
            format!("<{}>", input.generics.join(", ")),
        )
    }
}

fn gen_serialize(input: &Input) -> String {
    let (impl_generics, ty_generics) = headers(input, "Serialize");
    let name = &input.name;
    let mut out = String::new();
    let _ = write!(
        out,
        "impl{impl_generics} ::serde::Serialize for {name}{ty_generics} {{ \
         fn to_value(&self) -> ::serde::Value {{ "
    );
    match &input.body {
        Body::Struct(fields) => {
            out.push_str(
                "let mut __fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> \
                 = ::std::vec::Vec::new(); ",
            );
            for f in fields {
                let _ = write!(
                    out,
                    "__fields.push((::std::string::String::from(\"{f}\"), \
                     ::serde::Serialize::to_value(&self.{f}))); "
                );
            }
            out.push_str("::serde::Value::Obj(__fields) ");
        }
        Body::Enum(variants) => {
            out.push_str("match self { ");
            for (v, fields) in variants {
                if fields.is_empty() {
                    let _ = write!(
                        out,
                        "{name}::{v} => \
                         ::serde::Value::Str(::std::string::String::from(\"{v}\")), "
                    );
                } else {
                    let bindings = fields.join(", ");
                    let _ = write!(out, "{name}::{v} {{ {bindings} }} => {{ ");
                    out.push_str(
                        "let mut __fields: ::std::vec::Vec<(::std::string::String, \
                         ::serde::Value)> = ::std::vec::Vec::new(); ",
                    );
                    for f in fields {
                        let _ = write!(
                            out,
                            "__fields.push((::std::string::String::from(\"{f}\"), \
                             ::serde::Serialize::to_value({f}))); "
                        );
                    }
                    let _ = write!(
                        out,
                        "::serde::Value::Obj(::std::vec::Vec::from([\
                         (::std::string::String::from(\"{v}\"), \
                         ::serde::Value::Obj(__fields))])) }} "
                    );
                }
            }
            out.push_str("} ");
        }
    }
    out.push_str("} }");
    out
}

fn gen_deserialize(input: &Input) -> String {
    let (impl_generics, ty_generics) = headers(input, "Deserialize");
    let name = &input.name;
    let mut out = String::new();
    let _ = write!(
        out,
        "impl{impl_generics} ::serde::Deserialize for {name}{ty_generics} {{ \
         fn from_value(__v: &::serde::Value) -> \
         ::std::result::Result<Self, ::serde::Error> {{ "
    );
    match &input.body {
        Body::Struct(fields) => {
            let _ = write!(
                out,
                "let __obj = __v.as_obj().ok_or_else(|| \
                 ::serde::Error::custom(\"expected object for {name}\"))?; "
            );
            let _ = write!(out, "::std::result::Result::Ok({name} {{ ");
            for f in fields {
                let _ = write!(
                    out,
                    "{f}: ::serde::Deserialize::from_value(::serde::field(__obj, \"{f}\"))?, "
                );
            }
            out.push_str("}) ");
        }
        Body::Enum(variants) => {
            out.push_str("match __v { ");
            // Unit variants arrive as plain strings.
            out.push_str("::serde::Value::Str(__s) => match __s.as_str() { ");
            for (v, fields) in variants {
                if fields.is_empty() {
                    let _ = write!(out, "\"{v}\" => ::std::result::Result::Ok({name}::{v}), ");
                }
            }
            let _ = write!(
                out,
                "__other => ::std::result::Result::Err(::serde::Error::custom(\
                 ::std::format!(\"unknown {name} variant {{__other}}\"))), }}, "
            );
            // Struct variants arrive as single-entry objects.
            out.push_str(
                "::serde::Value::Obj(__entries) if __entries.len() == 1 => { \
                 let (__tag, __inner) = &__entries[0]; match __tag.as_str() { ",
            );
            for (v, fields) in variants {
                if fields.is_empty() {
                    continue;
                }
                let _ = write!(
                    out,
                    "\"{v}\" => {{ let __obj = __inner.as_obj().ok_or_else(|| \
                     ::serde::Error::custom(\"expected object for {name}::{v}\"))?; \
                     ::std::result::Result::Ok({name}::{v} {{ "
                );
                for f in fields {
                    let _ = write!(
                        out,
                        "{f}: ::serde::Deserialize::from_value(\
                         ::serde::field(__obj, \"{f}\"))?, "
                    );
                }
                out.push_str("}) } ");
            }
            let _ = write!(
                out,
                "__other => ::std::result::Result::Err(::serde::Error::custom(\
                 ::std::format!(\"unknown {name} variant {{__other}}\"))), }} }}, "
            );
            let _ = write!(
                out,
                "_ => ::std::result::Result::Err(::serde::Error::custom(\
                 \"expected enum {name}\")), }} "
            );
        }
    }
    out.push_str("} }");
    out
}
