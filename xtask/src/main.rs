//! Workspace automation driver, invoked as `cargo xtask <command>`.
//!
//! Commands:
//!
//! * `lint` — the static-analysis gate: rustfmt `--check`, then
//!   `clippy -D warnings` across the workspace, then a second, stricter
//!   clippy pass over the numeric-discipline crates (see
//!   [`STRICT_CRATES`]) with the `clippy.toml` disallowed-methods list
//!   promoted to hard errors (raw `f64` equality,
//!   `partial_cmp().unwrap()`, unwrapping flow results).
//! * `fmt` — apply rustfmt to the whole workspace.
//! * `bench` — run the pinned solver benchmark (`bench_solver`) and the
//!   serve load generator (`bench_serve`), both release profile, and
//!   validate the `BENCH_solver.json` / `BENCH_serve.json` they write at
//!   the workspace root. `--smoke` forwards the bins' quick mode for CI.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::env;
use std::path::{Path, PathBuf};
use std::process::{Command, ExitCode};

fn main() -> ExitCode {
    let task = env::args().nth(1);
    match task.as_deref() {
        Some("lint") => lint(),
        Some("fmt") => fmt(),
        Some("bench") => bench(env::args().nth(2).as_deref() == Some("--smoke")),
        Some(other) => {
            eprintln!("unknown task `{other}`");
            usage();
            ExitCode::FAILURE
        }
        None => {
            usage();
            ExitCode::FAILURE
        }
    }
}

fn usage() {
    eprintln!("usage: cargo xtask <lint|fmt|bench [--smoke]>");
    eprintln!("  lint   run the static-analysis gate (rustfmt --check + clippy -D warnings)");
    eprintln!("  fmt    apply rustfmt to the workspace");
    eprintln!(
        "  bench  run the solver benchmark + serve load generator and validate their reports"
    );
}

/// The workspace root: one level above this crate's manifest directory.
fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .expect("xtask lives one level below the workspace root")
        .to_path_buf()
}

/// Run a command in the workspace root; report whether it succeeded.
fn run(label: &str, program: &str, args: &[&str]) -> bool {
    println!("==> {label}");
    let status = Command::new(program)
        .args(args)
        .current_dir(workspace_root())
        .status();
    match status {
        Ok(s) if s.success() => true,
        Ok(s) => {
            eprintln!("xtask: `{label}` failed with {s}");
            false
        }
        Err(e) => {
            eprintln!("xtask: could not run `{program}`: {e}");
            false
        }
    }
}

/// Crates under the strict numeric-discipline lint set: the solver and flow
/// layers, where a raw float comparison or an unwrapped flow result is a
/// correctness bug, not a style preference.
const STRICT_CRATES: &[&str] = &[
    "amf-core",
    "amf-flow",
    "amf-numeric",
    "amf-audit",
    "amf-sim",
    "amf-serve",
];

fn lint() -> ExitCode {
    let mut ok = true;

    ok &= run(
        "rustfmt --check (workspace)",
        "cargo",
        &["fmt", "--all", "--", "--check"],
    );

    // `disallowed_methods` / `disallowed_types` (configured in clippy.toml)
    // fire everywhere once configured; the workspace pass covers test
    // targets too, where `unwrap()` is idiomatic, so it allows them here
    // and leaves enforcement to the strict `--lib` pass below.
    ok &= run(
        "clippy -D warnings (workspace, all targets)",
        "cargo",
        &[
            "clippy",
            "--workspace",
            "--all-targets",
            "--quiet",
            "--",
            "-D",
            "warnings",
            "-A",
            "clippy::disallowed-methods",
            "-A",
            "clippy::disallowed-types",
        ],
    );

    // The strict numeric-discipline pass: promote the clippy.toml bans —
    // plus the raw-float-comparison and unwrap lints they backstop — to
    // errors inside the strict set, lib targets only (tests exempt).
    let mut strict_args: Vec<&str> = vec!["clippy", "--quiet"];
    for krate in STRICT_CRATES {
        strict_args.extend_from_slice(&["-p", krate]);
    }
    strict_args.extend_from_slice(&[
        "--lib",
        "--",
        "-D",
        "warnings",
        "-D",
        "clippy::disallowed-methods",
        "-D",
        "clippy::disallowed-types",
        "-D",
        "clippy::float-cmp",
        "-D",
        "clippy::unwrap-used",
    ]);
    ok &= run(
        "clippy strict numeric-discipline pass (amf-core, amf-flow, amf-numeric, amf-audit, amf-sim, amf-serve)",
        "cargo",
        &strict_args,
    );

    if ok {
        println!("==> lint gate passed");
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Keys every `BENCH_solver.json` must contain (schema
/// `amf-bench-solver/v2`); checked textually so xtask stays
/// dependency-free.
const BENCH_SOLVER_KEYS: &[&str] = &[
    "\"schema\"",
    "\"amf-bench-solver/v2\"",
    "\"sweep\"",
    "\"e8_400x20\"",
    "\"batch\"",
    "\"kernels\"",
    "\"event_loop\"",
    "\"rounds_replayed\"",
];

/// Keys every `BENCH_serve.json` must contain (schema
/// `amf-bench-serve/v1`).
const BENCH_SERVE_KEYS: &[&str] = &[
    "\"schema\"",
    "\"amf-bench-serve/v1\"",
    "\"hardware\"",
    "\"closed_loop\"",
    "\"open_loop\"",
    "\"coalescing\"",
    "\"throughput_rps\"",
    "\"p50_us\"",
    "\"p95_us\"",
    "\"p99_us\"",
    "\"solves_per_request\"",
    "\"solve_reduction_factor\"",
    "\"audit_violations\": 0",
];

/// Run one benchmark bin and validate the report it writes.
fn bench_bin(bin: &str, report: &str, required: &[&str], smoke: bool) -> bool {
    let out = workspace_root().join(report);
    let out_str = out.to_string_lossy().into_owned();
    let mut args: Vec<&str> = vec!["run", "--release", "-p", "amf-bench", "--bin", bin, "--"];
    if smoke {
        args.push("--smoke");
    }
    args.extend_from_slice(&["--out", &out_str]);
    if !run(&format!("{bin} (release)"), "cargo", &args) {
        return false;
    }
    let json = match std::fs::read_to_string(&out) {
        Ok(s) if !s.trim().is_empty() => s,
        Ok(_) => {
            eprintln!("xtask: {} is empty", out.display());
            return false;
        }
        Err(e) => {
            eprintln!("xtask: benchmark report missing at {}: {e}", out.display());
            return false;
        }
    };
    for key in required {
        if !json.contains(key) {
            eprintln!("xtask: {} is malformed: missing {key}", out.display());
            return false;
        }
    }
    println!("==> benchmark report validated: {}", out.display());
    true
}

fn bench(smoke: bool) -> ExitCode {
    if bench_bin(
        "bench_solver",
        "BENCH_solver.json",
        BENCH_SOLVER_KEYS,
        smoke,
    ) && bench_bin("bench_serve", "BENCH_serve.json", BENCH_SERVE_KEYS, smoke)
    {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn fmt() -> ExitCode {
    if run("rustfmt (workspace)", "cargo", &["fmt", "--all"]) {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
