//! Workspace automation driver, invoked as `cargo xtask <command>`.
//!
//! Commands:
//!
//! * `lint` — the static-analysis gate: rustfmt `--check`, then
//!   `clippy -D warnings` across the workspace, then a second, stricter
//!   clippy pass over the numeric-discipline crates (see
//!   [`STRICT_CRATES`]) with the `clippy.toml` disallowed-methods list
//!   promoted to hard errors (raw `f64` equality,
//!   `partial_cmp().unwrap()`, unwrapping flow results).
//! * `fmt` — apply rustfmt to the whole workspace.
//! * `bench` — run the pinned solver benchmark (`bench_solver`) and the
//!   serve load generator (`bench_serve`), both release profile, and
//!   validate the `BENCH_solver.json` / `BENCH_serve.json` they write at
//!   the workspace root. `--smoke` forwards the bins' quick mode for CI.
//!   `--check` turns the run into a regression gate: reports are written
//!   to `target/` instead, and compared against the committed baselines —
//!   deterministic solver work counters must match exactly, and (full mode
//!   only) wall-clock ratios must stay within the tolerance, default 1.25×,
//!   overridable with `--tolerance X` or the `AMF_BENCH_TOLERANCE` env var.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::env;
use std::path::{Path, PathBuf};
use std::process::{Command, ExitCode};

fn main() -> ExitCode {
    let task = env::args().nth(1);
    match task.as_deref() {
        Some("lint") => lint(),
        Some("fmt") => fmt(),
        Some("bench") => match BenchOptions::parse(env::args().skip(2)) {
            Ok(opts) => bench(&opts),
            Err(msg) => {
                eprintln!("xtask: {msg}");
                usage();
                ExitCode::FAILURE
            }
        },
        Some(other) => {
            eprintln!("unknown task `{other}`");
            usage();
            ExitCode::FAILURE
        }
        None => {
            usage();
            ExitCode::FAILURE
        }
    }
}

/// Parsed `cargo xtask bench` flags.
struct BenchOptions {
    smoke: bool,
    check: bool,
    tolerance: f64,
}

impl BenchOptions {
    /// Parse flags; the regression tolerance resolves as
    /// `--tolerance` > `AMF_BENCH_TOLERANCE` > 1.25.
    fn parse(args: impl Iterator<Item = String>) -> Result<Self, String> {
        let mut opts = BenchOptions {
            smoke: false,
            check: false,
            tolerance: match env::var("AMF_BENCH_TOLERANCE") {
                Ok(v) => v
                    .parse::<f64>()
                    .map_err(|_| format!("AMF_BENCH_TOLERANCE is not a number: {v:?}"))?,
                Err(_) => 1.25,
            },
        };
        let mut args = args.peekable();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--smoke" => opts.smoke = true,
                "--check" => opts.check = true,
                "--tolerance" => {
                    let v = args.next().ok_or("--tolerance requires a value")?;
                    opts.tolerance = v
                        .parse::<f64>()
                        .map_err(|_| format!("--tolerance is not a number: {v:?}"))?;
                }
                other => return Err(format!("unknown bench flag {other}")),
            }
        }
        if !(opts.tolerance.is_finite() && opts.tolerance >= 1.0) {
            return Err(format!(
                "tolerance must be a finite ratio >= 1.0, got {}",
                opts.tolerance
            ));
        }
        Ok(opts)
    }
}

fn usage() {
    eprintln!("usage: cargo xtask <lint|fmt|bench [--smoke] [--check] [--tolerance X]>");
    eprintln!("  lint   run the static-analysis gate (rustfmt --check + clippy -D warnings)");
    eprintln!("  fmt    apply rustfmt to the workspace");
    eprintln!(
        "  bench  run the solver benchmark + serve load generator and validate their reports;\n\
         \x20        --check gates against the committed BENCH_*.json baselines (tolerance\n\
         \x20        1.25x; override with --tolerance or AMF_BENCH_TOLERANCE)"
    );
}

/// The workspace root: one level above this crate's manifest directory.
fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .expect("xtask lives one level below the workspace root")
        .to_path_buf()
}

/// Run a command in the workspace root; report whether it succeeded.
fn run(label: &str, program: &str, args: &[&str]) -> bool {
    println!("==> {label}");
    let status = Command::new(program)
        .args(args)
        .current_dir(workspace_root())
        .status();
    match status {
        Ok(s) if s.success() => true,
        Ok(s) => {
            eprintln!("xtask: `{label}` failed with {s}");
            false
        }
        Err(e) => {
            eprintln!("xtask: could not run `{program}`: {e}");
            false
        }
    }
}

/// Crates under the strict numeric-discipline lint set: the solver and flow
/// layers, where a raw float comparison or an unwrapped flow result is a
/// correctness bug, not a style preference.
const STRICT_CRATES: &[&str] = &[
    "amf-core",
    "amf-flow",
    "amf-numeric",
    "amf-audit",
    "amf-sim",
    "amf-serve",
];

fn lint() -> ExitCode {
    let mut ok = true;

    ok &= run(
        "rustfmt --check (workspace)",
        "cargo",
        &["fmt", "--all", "--", "--check"],
    );

    // `disallowed_methods` / `disallowed_types` (configured in clippy.toml)
    // fire everywhere once configured; the workspace pass covers test
    // targets too, where `unwrap()` is idiomatic, so it allows them here
    // and leaves enforcement to the strict `--lib` pass below.
    ok &= run(
        "clippy -D warnings (workspace, all targets)",
        "cargo",
        &[
            "clippy",
            "--workspace",
            "--all-targets",
            "--quiet",
            "--",
            "-D",
            "warnings",
            "-A",
            "clippy::disallowed-methods",
            "-A",
            "clippy::disallowed-types",
        ],
    );

    // The strict numeric-discipline pass: promote the clippy.toml bans —
    // plus the raw-float-comparison and unwrap lints they backstop — to
    // errors inside the strict set, lib targets only (tests exempt).
    let mut strict_args: Vec<&str> = vec!["clippy", "--quiet"];
    for krate in STRICT_CRATES {
        strict_args.extend_from_slice(&["-p", krate]);
    }
    strict_args.extend_from_slice(&[
        "--lib",
        "--",
        "-D",
        "warnings",
        "-D",
        "clippy::disallowed-methods",
        "-D",
        "clippy::disallowed-types",
        "-D",
        "clippy::float-cmp",
        "-D",
        "clippy::unwrap-used",
    ]);
    ok &= run(
        "clippy strict numeric-discipline pass (amf-core, amf-flow, amf-numeric, amf-audit, amf-sim, amf-serve)",
        "cargo",
        &strict_args,
    );

    if ok {
        println!("==> lint gate passed");
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Keys every `BENCH_solver.json` must contain (schema
/// `amf-bench-solver/v3`); checked textually so xtask stays
/// dependency-free.
const BENCH_SOLVER_KEYS: &[&str] = &[
    "\"schema\"",
    "\"amf-bench-solver/v3\"",
    "\"sweep\"",
    "\"e8_400x20\"",
    "\"batch\"",
    "\"kernels\"",
    "\"event_loop\"",
    "\"rounds_replayed\"",
    "\"ns_per_edge\"",
    "\"csr_rebuilds\"",
    "\"bitset_words_cleared\"",
];

/// Keys every `BENCH_serve.json` must contain (schema
/// `amf-bench-serve/v1`).
const BENCH_SERVE_KEYS: &[&str] = &[
    "\"schema\"",
    "\"amf-bench-serve/v1\"",
    "\"hardware\"",
    "\"closed_loop\"",
    "\"open_loop\"",
    "\"coalescing\"",
    "\"throughput_rps\"",
    "\"p50_us\"",
    "\"p95_us\"",
    "\"p99_us\"",
    "\"solves_per_request\"",
    "\"solve_reduction_factor\"",
    "\"audit_violations\": 0",
];

/// Run one benchmark bin and validate the report it writes. Returns the
/// report contents on success so `--check` can compare them.
fn bench_bin(bin: &str, out: &Path, required: &[&str], smoke: bool) -> Option<String> {
    let out_str = out.to_string_lossy().into_owned();
    let mut args: Vec<&str> = vec!["run", "--release", "-p", "amf-bench", "--bin", bin, "--"];
    if smoke {
        args.push("--smoke");
    }
    args.extend_from_slice(&["--out", &out_str]);
    if !run(&format!("{bin} (release)"), "cargo", &args) {
        return None;
    }
    let json = match std::fs::read_to_string(out) {
        Ok(s) if !s.trim().is_empty() => s,
        Ok(_) => {
            eprintln!("xtask: {} is empty", out.display());
            return None;
        }
        Err(e) => {
            eprintln!("xtask: benchmark report missing at {}: {e}", out.display());
            return None;
        }
    };
    for key in required {
        if !json.contains(key) {
            eprintln!("xtask: {} is malformed: missing {key}", out.display());
            return None;
        }
    }
    println!("==> benchmark report validated: {}", out.display());
    Some(json)
}

/// First number following `"key":` in `json`, parsed leniently — enough
/// for the reports our own serializer writes, keeping xtask dependency-free.
fn extract_number(json: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = json.find(&needle)? + needle.len();
    let rest = json[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E')))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Every number following `"key":` in `json`, in document order.
fn extract_all_numbers(json: &str, key: &str) -> Vec<f64> {
    let needle = format!("\"{key}\":");
    let mut out = Vec::new();
    let mut rest = json;
    while let Some(at) = rest.find(&needle) {
        rest = &rest[at + needle.len()..];
        if let Some(v) = extract_number_prefix(rest) {
            out.push(v);
        }
    }
    out
}

/// Parse the number at the start of `rest` (after optional whitespace).
fn extract_number_prefix(rest: &str) -> Option<f64> {
    let rest = rest.trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E')))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// The `sweep` section of a solver report (everything before the headline
/// section): its work counters are deterministic for a fixed instance set,
/// independent of rep count, and identical in smoke and full mode.
fn sweep_section(json: &str) -> &str {
    match json.find("\"e8_400x20\"") {
        Some(end) => &json[..end],
        None => json,
    }
}

/// Compare a fresh solver report against the committed baseline.
///
/// Deterministic counters (sweep-section `rounds`, `max_flows`,
/// `edges_visited`) must match the baseline exactly in every mode — a
/// mismatch means the solver is doing different *work*, not that the
/// machine is slow. Wall-clock gating (headline `contracted_ms` and
/// `legacy_ms`, event-loop `incremental_ms`) applies in full mode only;
/// smoke timings are single-rep noise.
fn check_solver(fresh: &str, baseline: &str, smoke: bool, tolerance: f64) -> bool {
    let mut ok = true;
    for key in ["rounds", "max_flows", "edges_visited"] {
        let got = extract_all_numbers(sweep_section(fresh), key);
        let want = extract_all_numbers(sweep_section(baseline), key);
        if got != want {
            eprintln!(
                "xtask: bench --check: sweep counter {key:?} diverged from baseline\n  \
                 baseline: {want:?}\n  fresh:    {got:?}"
            );
            ok = false;
        }
    }
    if smoke {
        return ok;
    }
    for key in ["contracted_ms", "legacy_ms", "incremental_ms"] {
        let (Some(got), Some(want)) = (extract_number(fresh, key), extract_number(baseline, key))
        else {
            eprintln!("xtask: bench --check: {key:?} missing from a solver report");
            ok = false;
            continue;
        };
        let ratio = got / want;
        // NaN falls into the failure branch by construction.
        if ratio <= tolerance {
            println!("==> bench --check: {key} {got:.4} ms vs baseline {want:.4} ms ({ratio:.3}x)");
        } else {
            eprintln!(
                "xtask: bench --check: {key} regressed {ratio:.3}x over baseline \
                 ({got:.4} ms vs {want:.4} ms, tolerance {tolerance}x)"
            );
            ok = false;
        }
    }
    ok
}

/// Compare a fresh serve report against the committed baseline: sustained
/// closed-loop throughput must stay within `tolerance` of the baseline.
/// Serve counters depend on thread interleaving, so nothing is compared in
/// smoke mode beyond the key validation every run gets.
fn check_serve(fresh: &str, baseline: &str, smoke: bool, tolerance: f64) -> bool {
    if smoke {
        return true;
    }
    let (Some(got), Some(want)) = (
        extract_number(fresh, "throughput_rps"),
        extract_number(baseline, "throughput_rps"),
    ) else {
        eprintln!("xtask: bench --check: throughput_rps missing from a serve report");
        return false;
    };
    let ratio = want / got;
    // NaN falls into the failure branch by construction.
    if ratio <= tolerance {
        println!("==> bench --check: throughput {got:.1} rps vs baseline {want:.1} rps");
        true
    } else {
        eprintln!(
            "xtask: bench --check: throughput_rps regressed {ratio:.3}x below baseline \
             ({got:.1} rps vs {want:.1} rps, tolerance {tolerance}x)"
        );
        false
    }
}

fn bench(opts: &BenchOptions) -> ExitCode {
    let root = workspace_root();
    let mut ok = true;
    for (bin, report, keys) in [
        ("bench_solver", "BENCH_solver.json", BENCH_SOLVER_KEYS),
        ("bench_serve", "BENCH_serve.json", BENCH_SERVE_KEYS),
    ] {
        let committed = root.join(report);
        // In check mode the committed baseline is the reference: read it
        // before the run, and keep the fresh report out of the way under
        // target/ so the working tree stays clean.
        let (out, baseline) = if opts.check {
            let baseline = match std::fs::read_to_string(&committed) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!(
                        "xtask: bench --check needs a committed baseline at {}: {e}",
                        committed.display()
                    );
                    ok = false;
                    continue;
                }
            };
            let dir = root.join("target").join("bench-check");
            if let Err(e) = std::fs::create_dir_all(&dir) {
                eprintln!("xtask: cannot create {}: {e}", dir.display());
                ok = false;
                continue;
            }
            (dir.join(report), Some(baseline))
        } else {
            (committed, None)
        };
        let Some(fresh) = bench_bin(bin, &out, keys, opts.smoke) else {
            ok = false;
            continue;
        };
        if let Some(baseline) = baseline {
            ok &= match bin {
                "bench_solver" => check_solver(&fresh, &baseline, opts.smoke, opts.tolerance),
                _ => check_serve(&fresh, &baseline, opts.smoke, opts.tolerance),
            };
        }
    }
    if ok {
        if opts.check {
            println!("==> bench --check passed (tolerance {}x)", opts.tolerance);
        }
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn fmt() -> ExitCode {
    if run("rustfmt (workspace)", "cargo", &["fmt", "--all"]) {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
